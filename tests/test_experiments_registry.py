"""Tests for the generic name → factory registry."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import Registry

pytestmark = pytest.mark.smoke


@pytest.fixture
def registry() -> Registry:
    r: Registry = Registry("widget")
    r.register("gadget", lambda **kw: ("gadget", kw))
    r.register("gizmo", lambda **kw: ("gizmo", kw), aliases=("gismo",))
    return r


class TestRegistration:
    def test_register_and_build(self, registry):
        kind, kwargs = registry.build("gadget", colour="red")
        assert kind == "gadget"
        assert kwargs == {"colour": "red"}

    def test_names_include_aliases_sorted(self, registry):
        assert registry.names() == ["gadget", "gismo", "gizmo"]

    def test_case_insensitive(self, registry):
        assert registry.resolve("GaDgEt") is registry.resolve("gadget")

    def test_duplicate_rejected(self, registry):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("gadget", dict)

    def test_overwrite_allowed_when_requested(self, registry):
        registry.register("gadget", dict, overwrite=True)
        assert registry.build("gadget") == {}

    def test_decorator_form(self):
        r: Registry = Registry("thing")

        @r.register("box")
        def make_box():
            return "box!"

        assert r.build("box") == "box!"
        assert make_box() == "box!"  # the decorator returns the factory

    def test_unregister(self, registry):
        registry.unregister("gadget")
        assert "gadget" not in registry
        with pytest.raises(ConfigurationError):
            registry.unregister("gadget")

    def test_alias_survives_unregister_of_canonical(self, registry):
        registry.unregister("gizmo")
        assert "gismo" in registry

    def test_alias_conflict_leaves_registry_untouched(self, registry):
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("newcomer", dict, aliases=("gadget",))
        assert "newcomer" not in registry
        assert registry.build("gadget") == ("gadget", {})  # original factory intact


class TestLookup:
    def test_container_protocol(self, registry):
        assert "gadget" in registry
        assert "nope" not in registry
        assert 42 not in registry
        assert len(registry) == 3
        assert list(registry) == registry.names()

    def test_canonical_resolves_alias(self, registry):
        assert registry.canonical("gismo") == "gizmo"
        assert registry.canonical("gizmo") == "gizmo"

    def test_unknown_name_raises_configuration_error(self, registry):
        with pytest.raises(ConfigurationError, match="unknown widget"):
            registry.resolve("does-not-exist")

    def test_suggest_close_matches(self, registry):
        assert "gadget" in registry.suggest("gaget")
        assert registry.suggest("zzzzz") == []

    def test_typo_message_includes_suggestion(self, registry):
        with pytest.raises(ConfigurationError, match="did you mean 'gadget'"):
            registry.resolve("gaget")

    def test_message_lists_available_names(self, registry):
        with pytest.raises(ConfigurationError, match="available: gadget, gismo, gizmo"):
            registry.resolve("zzzzz")


class TestDomainRegistries:
    """The four domain registries are instances of the generic Registry."""

    def test_all_four_are_registry_instances(self):
        from repro.core.registry import ALGORITHMS
        from repro.paging.registry import PAGING_POLICIES
        from repro.topology.registry import TOPOLOGIES
        from repro.traffic.registry import WORKLOADS

        for registry in (ALGORITHMS, TOPOLOGIES, WORKLOADS, PAGING_POLICIES):
            assert isinstance(registry, Registry)

    def test_topology_typo_suggests_fat_tree(self):
        from repro.topology import make_topology

        with pytest.raises(ConfigurationError, match="did you mean") as excinfo:
            make_topology("fatree")
        assert "fat-tree" in str(excinfo.value)

    def test_algorithm_typo_suggests_rbma(self):
        from repro.core import make_algorithm
        from repro.config import MatchingConfig
        from repro.topology import LeafSpineTopology

        with pytest.raises(ConfigurationError, match="did you mean 'rbma'"):
            make_algorithm("rmba", LeafSpineTopology(4), MatchingConfig(b=1))

    def test_workload_typo_suggests_facebook(self):
        from repro.traffic import make_workload

        with pytest.raises(ConfigurationError, match="facebook-database"):
            make_workload("facebook-databse", n_nodes=4, n_requests=10)

    def test_paging_typo_suggests_marking(self):
        from repro.paging.registry import make_paging_factory

        with pytest.raises(ConfigurationError, match="did you mean 'marking'"):
            make_paging_factory("markng")

    def test_so_bma_alias_still_registered(self):
        from repro.core.registry import ALGORITHMS

        assert ALGORITHMS.canonical("sobma") == "so-bma"
