"""Chaos tier: deterministic fault injection and hardened failure semantics.

What this file certifies (see :mod:`repro.faults` and ``REPRO_FAULTS``):

* the injector is **deterministic**: every decision is a pure function of
  ``(seed, site, mode, call index)``, so a chaos run replays exactly;
* fault injection is **off by default with zero overhead** — one
  module-level plan check guards every hook;
* transient ``OSError`` on store/queue IO is absorbed by **bounded retry
  with backoff** (``REPRO_IO_RETRIES``/``REPRO_IO_BACKOFF``);
* corrupt store entries **quarantine as a miss** (RuntimeWarning + counter)
  instead of aborting a run, and a persistently unwritable store degrades
  to cold execution;
* the chaos differentials: a matrix run under injected transient faults is
  **bit-identical** to the fault-free run on the serial and queue backends,
  and workers killed at an injected crash site leave state that
  ``repro doctor`` reports clean once the queue's requeue machinery runs.

Tests that spawn real worker subprocesses also carry the ``sched`` marker
(auto-skipped on single-CPU hosts unless ``REPRO_FORCE_SCHED`` is set).
"""

from __future__ import annotations

import json
import warnings

import pytest

from repro.errors import ConfigurationError
from repro.exec import build_execution_plan, execute_plan
from repro.experiments import ExperimentSpec
from repro.faults import (
    FAULT_SITES,
    FaultPlan,
    InjectedFault,
    fault_point,
    fault_stats,
    faults_active,
    injected_faults,
    install_faults,
    maybe_corrupt,
    parse_faults,
)
from repro.ioutil import atomic_write_json, read_json, with_io_retries
from repro.store.run_store import RunStore

pytestmark = pytest.mark.chaos

SEED = 314


def _spec(name="rbma", seed=SEED, n_requests=150, n_nodes=8):
    return ExperimentSpec(
        algorithm={"name": name, "b": 3, "alpha": 4.0},
        traffic={"name": "zipf",
                 "params": {"n_nodes": n_nodes, "n_requests": n_requests}},
        simulation={"checkpoints": 4},
        seed=seed,
    )


def _matrix(n_requests=150):
    return [
        _spec(name, seed=seed, n_requests=n_requests)
        for seed in (1, 2)
        for name in ("rbma", "bma", "oblivious")
    ]


def _assert_identical(a, b):
    """Bit-identical results, ignoring wall-clock timing and provenance."""
    da, db = a.to_dict(), b.to_dict()
    for d in (da, db):
        d.pop("extra", None)
        d.pop("total_elapsed_seconds", None)
        d.get("series", {}).pop("elapsed_seconds", None)
    assert da == db


# --------------------------------------------------------------------------- #
# REPRO_FAULTS parsing
# --------------------------------------------------------------------------- #


class TestParseFaults:
    def test_rate_call_and_limit_syntax(self):
        [a, b, c] = parse_faults(
            "store.write:osfail@0.25, worker.crash:crash#2, queue.claim:delay@1.0x3"
        )
        assert (a.site, a.mode, a.rate, a.at_call, a.limit) == (
            "store.write", "osfail", 0.25, None, None)
        assert (b.site, b.mode, b.at_call) == ("worker.crash", "crash", 2)
        assert (c.site, c.mode, c.rate, c.limit) == ("queue.claim", "delay", 1.0, 3)

    @pytest.mark.parametrize("bad", [
        "store.write",                 # no mode
        "store.write:osfail",          # no rate/call
        "store.write:osfail@nope",     # unparseable rate
        "store.write:osfail@1.5",      # rate out of range
        "bogus.site:osfail@0.1",       # unknown site
        "store.write:explode@0.1",     # unknown mode
        "store.read:corrupt@0.1",      # corrupt needs a write site
        "worker.crash:crash#0",        # call index < 1
        "store.write:osfail@0.1x0",    # limit < 1
        ",",                           # no rules at all
    ])
    def test_malformed_specs_fail_loudly(self, bad):
        with pytest.raises(ConfigurationError):
            parse_faults(bad)

    def test_every_registered_site_parses(self):
        for site in FAULT_SITES:
            mode = "corrupt" if "write" in site else "delay"
            [rule] = parse_faults(f"{site}:{mode}@0.5")
            assert rule.site == site


# --------------------------------------------------------------------------- #
# Determinism and the zero-overhead off path
# --------------------------------------------------------------------------- #


def _osfail_trace(seed: int, n: int = 40) -> list:
    """Which of n visits to store.write inject, under osfail@0.3."""
    trace = []
    with injected_faults("store.write:osfail@0.3", seed=seed):
        for _ in range(n):
            try:
                fault_point("store.write")
                trace.append(False)
            except InjectedFault:
                trace.append(True)
    return trace


class TestDeterminism:
    def test_same_seed_same_injections(self):
        first = _osfail_trace(seed=7)
        assert any(first) and not all(first)
        assert _osfail_trace(seed=7) == first

    def test_different_seed_different_injections(self):
        assert _osfail_trace(seed=7) != _osfail_trace(seed=8)

    def test_at_call_fires_exactly_once_at_the_nth_visit(self):
        with injected_faults("store.write:osfail#3") as plan:
            for call in range(1, 7):
                if call == 3:
                    with pytest.raises(InjectedFault):
                        fault_point("store.write")
                else:
                    fault_point("store.write")
            assert plan.stats() == {"store.write": 1}

    def test_limit_caps_total_injections(self):
        with injected_faults("store.write:osfail@1.0x2") as plan:
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    fault_point("store.write")
            for _ in range(10):
                fault_point("store.write")
            assert plan.stats() == {"store.write": 2}

    def test_corrupt_mangles_writes_on_its_own_counter(self):
        with injected_faults("store.write:corrupt@1.0x1"):
            mangled = maybe_corrupt("store.write", '{"ok": true}')
            assert mangled != '{"ok": true}'
            assert maybe_corrupt("store.write", '{"ok": true}') == '{"ok": true}'

    def test_off_by_default_all_hooks_are_noops(self):
        assert not faults_active()
        assert fault_stats() == {}
        fault_point("store.write")  # must not raise
        assert maybe_corrupt("store.write", "text") == "text"

    def test_install_and_clear_round_trip(self):
        plan = install_faults("queue.claim:delay@1.0")
        assert faults_active() and isinstance(plan, FaultPlan)
        from repro.faults import clear_faults

        clear_faults()
        assert not faults_active()

    def test_unrelated_sites_are_untouched(self):
        with injected_faults("store.write:osfail@1.0"):
            fault_point("store.read")
            fault_point("queue.claim")


# --------------------------------------------------------------------------- #
# Bounded retry with backoff
# --------------------------------------------------------------------------- #


class TestIoRetries:
    def test_transient_failures_are_retried(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO_RETRIES", "2")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "0")
        attempts = []

        def op():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("transient")
            return "ok"

        assert with_io_retries(op, "store.write") == "ok"
        assert len(attempts) == 3

    def test_budget_exhaustion_raises_the_last_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_IO_RETRIES", "1")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "0")
        attempts = []

        def op():
            attempts.append(1)
            raise OSError("still broken")

        with pytest.raises(OSError, match="still broken"):
            with_io_retries(op, "store.write")
        assert len(attempts) == 2

    def test_file_not_found_is_never_retried(self):
        attempts = []

        def op():
            attempts.append(1)
            raise FileNotFoundError("a miss, not a hiccup")

        with pytest.raises(FileNotFoundError):
            with_io_retries(op, "store.read")
        assert len(attempts) == 1

    def test_atomic_write_survives_injected_transients(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_IO_RETRIES", "2")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "0")
        target = tmp_path / "out.json"
        with injected_faults("store.write:osfail@1.0x2") as plan:
            atomic_write_json(target, {"ok": True})
            assert plan.stats() == {"store.write": 2}
        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["out.json"]

    def test_corrupted_write_is_detectable_on_read(self, tmp_path):
        # Corruption mangles whatever attempt it hits; the payload lands
        # torn, which is exactly what the read-side quarantine is for.
        target = tmp_path / "out.json"
        with injected_faults("store.write:corrupt@1.0x1"):
            atomic_write_json(target, {"ok": True})
        with pytest.raises(json.JSONDecodeError):
            read_json(target)

    def test_junk_env_values_warn_and_use_defaults(self, monkeypatch):
        from repro.ioutil import io_backoff, io_retries

        monkeypatch.setenv("REPRO_IO_RETRIES", "lots")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "soon")
        with pytest.warns(RuntimeWarning, match="REPRO_IO_RETRIES"):
            assert io_retries() == 2
        with pytest.warns(RuntimeWarning, match="REPRO_IO_BACKOFF"):
            assert io_backoff() == pytest.approx(0.02)


# --------------------------------------------------------------------------- #
# Store hardening: quarantine, degraded mode, tmp reaping
# --------------------------------------------------------------------------- #


class TestStoreHardening:
    def test_checksum_mismatch_quarantines_as_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        fp = store.put(_spec().execute())
        path = store.entry_path(fp)
        payload = json.loads(path.read_text())
        payload["result"]["total_routing_cost"] = 0.0  # silent bit-flip
        path.write_text(json.dumps(payload))
        with pytest.warns(RuntimeWarning, match="checksum"):
            assert store.get_payload(fp) is None
        assert (tmp_path / "quarantine" / f"{fp}.json").exists()
        assert store.counters.to_dict()["quarantined"] == 1

    def test_legacy_entry_without_checksum_still_reads(self, tmp_path):
        store = RunStore(tmp_path)
        fp = store.put(_spec().execute())
        path = store.entry_path(fp)
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        assert store.get_payload(fp) is not None

    def test_unwritable_store_degrades_to_cold_runs(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_IO_RETRIES", "0")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "0")
        store = RunStore(tmp_path)
        result = _spec().execute()
        with injected_faults("store.write:osfail@1.0,store.index_write:osfail@1.0"):
            with pytest.warns(RuntimeWarning, match="not writable"):
                fp = store.put(result)
            # Degraded, not dead: the put reported the fingerprint, nothing
            # was persisted, and later puts stay silent (warn once).
            assert store.get_payload(fp) is None
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                store.put(result)
        assert store.counters.to_dict()["write_failures"] >= 1
        # With the faults gone the same store persists again.
        assert store.put(result) == fp
        assert store.get_payload(fp) is not None

    def test_gc_reaps_stale_tmp_files(self, tmp_path):
        import os as _os
        import time as _time

        store = RunStore(tmp_path)
        store.put(_spec().execute())
        shard = next(store.runs_dir.iterdir())
        stale = shard / ".dead.json.tmp-999"
        stale.write_text("{ torn")
        old = _time.time() - 2 * store.TMP_MAX_AGE_SECONDS
        _os.utime(stale, (old, old))
        fresh = shard / ".live.json.tmp-1000"
        fresh.write_text("{ in flight")
        store.gc(dry_run=True)
        assert stale.exists()  # dry_run reports without deleting
        store.gc()
        assert not stale.exists()
        assert fresh.exists()  # a live writer's tmp file survives

    def test_scan_skips_checksum_failing_entries(self, tmp_path):
        store = RunStore(tmp_path)
        fp = store.put(_spec().execute())
        path = store.entry_path(fp)
        payload = json.loads(path.read_text())
        payload["result"]["total_routing_cost"] = -1.0
        path.write_text(json.dumps(payload))
        (tmp_path / "index.json").unlink()
        fresh = RunStore(tmp_path)  # index rebuild goes through _scan
        assert len(fresh) == 0


# --------------------------------------------------------------------------- #
# Chaos differentials: fault-free vs injected-transients, bit-identical
# --------------------------------------------------------------------------- #


_TRANSIENT_PLAN = (
    "store.write:osfail@0.15,store.read:osfail@0.15,store.index_write:osfail@0.2,"
    "queue.task_write:osfail@0.1,queue.heartbeat:osfail@0.2,"
    "queue.result_write:osfail@0.1,queue.claim:delay@0.3"
)


class TestChaosDifferential:
    def test_serial_with_store_is_bit_identical_under_transient_faults(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_IO_RETRIES", "4")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "0")
        specs = _matrix()
        baseline = execute_plan(
            build_execution_plan(specs, store=False), backend="serial"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with injected_faults(_TRANSIENT_PLAN, seed=5) as plan:
                chaotic = execute_plan(
                    build_execution_plan(specs, store=str(tmp_path / "store")),
                    backend="serial",
                )
                injected = plan.stats()
        assert sum(injected.values()) > 0, "chaos run injected nothing"
        assert len(chaotic) == len(baseline)
        for clean, dirty in zip(baseline, chaotic):
            _assert_identical(clean, dirty)

    def test_warm_reads_under_faults_stay_bit_identical(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_IO_RETRIES", "4")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "0")
        specs = _matrix()
        store_path = str(tmp_path / "store")
        cold = execute_plan(
            build_execution_plan(specs, store=store_path), backend="serial"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            with injected_faults("store.read:osfail@0.25", seed=11) as plan:
                warm = execute_plan(
                    build_execution_plan(specs, store=store_path), backend="serial"
                )
                injected = plan.stats()
        assert injected.get("store.read", 0) > 0
        for a, b in zip(cold, warm):
            _assert_identical(a, b)

    @pytest.mark.sched
    def test_queue_backend_is_bit_identical_under_env_injected_faults(
        self, tmp_path, monkeypatch
    ):
        """Workers inherit REPRO_FAULTS from the environment; the sweep's
        results must still match fault-free serial execution exactly."""
        specs = _matrix(n_requests=400)
        baseline = execute_plan(
            build_execution_plan(specs, store=False), backend="serial"
        )
        monkeypatch.setenv("REPRO_FAULTS", _TRANSIENT_PLAN)
        monkeypatch.setenv("REPRO_FAULTS_SEED", "3")
        monkeypatch.setenv("REPRO_IO_RETRIES", "4")
        monkeypatch.setenv("REPRO_IO_BACKOFF", "0.001")
        # This test process imported repro.faults long before the env was
        # set, so the parent stays fault-free; only workers see the plan.
        assert not faults_active()
        chaotic = execute_plan(
            build_execution_plan(specs, store=False),
            backend="queue",
            n_workers=2,
            queue_dir=str(tmp_path / "queue"),
            lease_seconds=5.0,
            poll_interval=0.05,
            timeout=300.0,
        )
        for clean, dirty in zip(baseline, chaotic):
            _assert_identical(clean, dirty)


# --------------------------------------------------------------------------- #
# Worker crash chaos: injected SIGKILL, requeue, doctor-clean state
# --------------------------------------------------------------------------- #


@pytest.mark.sched
def test_injected_worker_crashes_requeue_and_leave_doctor_clean_state(
    tmp_path, monkeypatch
):
    """Every worker subprocess is SIGKILLed at an injected ``worker.crash``
    site (the second checkpoint, i.e. just before publishing its first
    result).  The queue's lease/requeue machinery must finish the sweep
    bit-identically anyway, and ``repro doctor`` must report the leftover
    queue directory clean."""
    from repro.cli import main
    from repro.doctor import audit_queue
    from repro.exec.queue import WorkQueue

    specs = _matrix(n_requests=400)
    baseline = execute_plan(
        build_execution_plan(specs, store=False), backend="serial"
    )
    monkeypatch.setenv("REPRO_FAULTS", "worker.crash:crash#2")
    assert not faults_active()  # the parent never installs the crash plan
    queue_dir = tmp_path / "queue"
    results = execute_plan(
        build_execution_plan(specs, store=False),
        backend="queue",
        n_workers=2,
        queue_dir=str(queue_dir),
        lease_seconds=5.0,
        poll_interval=0.05,
        timeout=300.0,
    )
    for clean, dirty in zip(baseline, results):
        _assert_identical(clean, dirty)
    # The crashed attempts really happened: some task took >= 2 attempts.
    assert max(r.extra["attempts"] for r in results) >= 2

    monkeypatch.delenv("REPRO_FAULTS")
    report = audit_queue(WorkQueue.open(queue_dir))
    assert report.clean(), [f.to_dict() for f in report.findings]
    assert main(["doctor", "--queue", str(queue_dir)]) == 0
