"""Tests for the non-fat-tree topologies and the registry."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.topology import (
    ExpanderTopology,
    HypercubeTopology,
    LeafSpineTopology,
    RingTopology,
    StarTopology,
    TorusTopology,
    available_topologies,
    make_topology,
)


class TestLeafSpine:
    def test_all_distances_two(self):
        topo = LeafSpineTopology(n_racks=10, n_spines=3)
        assert {topo.distance(u, v) for u, v in topo.all_pairs()} == {2.0}

    def test_spine_count_does_not_change_distances(self):
        a = LeafSpineTopology(n_racks=6, n_spines=1)
        b = LeafSpineTopology(n_racks=6, n_spines=8)
        assert a.max_distance() == b.max_distance() == 2

    def test_rejects_bad_args(self):
        with pytest.raises(TopologyError):
            LeafSpineTopology(n_racks=1)
        with pytest.raises(TopologyError):
            LeafSpineTopology(n_racks=4, n_spines=0)


class TestStar:
    def test_leaf_only_distances(self):
        topo = StarTopology(n_racks=5)
        assert {topo.distance(u, v) for u, v in topo.all_pairs()} == {2.0}

    def test_hub_as_rack_distances(self):
        topo = StarTopology(n_racks=5, hub_is_rack=True)
        assert topo.n_racks == 6
        # Rack 0 is the hub: hub-leaf distance is 1, leaf-leaf is 2.
        assert topo.distance(0, 3) == 1
        assert topo.distance(1, 2) == 2

    def test_rejects_too_small(self):
        with pytest.raises(TopologyError):
            StarTopology(n_racks=1)


class TestRing:
    def test_distances_wrap_around(self):
        topo = RingTopology(n_racks=6)
        assert topo.distance(0, 1) == 1
        assert topo.distance(0, 3) == 3
        assert topo.distance(0, 5) == 1

    def test_diameter(self):
        assert RingTopology(n_racks=8).max_distance() == 4

    def test_rejects_too_small(self):
        with pytest.raises(TopologyError):
            RingTopology(n_racks=2)


class TestTorus:
    def test_manhattan_with_wraparound(self):
        topo = TorusTopology(rows=4, cols=4)
        assert topo.n_racks == 16
        # (0,0) to (2,2): 2 + 2 = 4
        r = topo.rack_nodes.index((0, 0))
        s = topo.rack_nodes.index((2, 2))
        assert topo.distance(r, s) == 4
        # (0,0) to (3,0): wraps around to distance 1
        t = topo.rack_nodes.index((3, 0))
        assert topo.distance(r, t) == 1

    def test_coordinates_roundtrip(self):
        topo = TorusTopology(rows=3, cols=2)
        for rack in range(topo.n_racks):
            assert topo.rack_nodes[rack] == topo.coordinates(rack)

    def test_rejects_thin_torus(self):
        with pytest.raises(TopologyError):
            TorusTopology(rows=1, cols=5)


class TestHypercube:
    def test_size_and_diameter(self):
        topo = HypercubeTopology(dimension=4)
        assert topo.n_racks == 16
        assert topo.max_distance() == 4

    def test_hamming_distance(self):
        topo = HypercubeTopology(dimension=3)
        # Nodes are bit tuples sorted lexicographically: 0 = (0,0,0), 7 = (1,1,1).
        assert topo.distance(0, topo.n_racks - 1) == 3

    def test_rejects_bad_dimension(self):
        with pytest.raises(TopologyError):
            HypercubeTopology(dimension=0)
        with pytest.raises(TopologyError):
            HypercubeTopology(dimension=20)


class TestExpander:
    def test_regular_degree(self):
        topo = ExpanderTopology(n_racks=20, degree=4, seed=1)
        assert all(d == 4 for _n, d in topo.graph.degree())

    def test_connected_and_small_diameter(self):
        topo = ExpanderTopology(n_racks=30, degree=4, seed=2)
        assert topo.max_distance() <= 5

    def test_reproducible_with_seed(self):
        a = ExpanderTopology(n_racks=16, degree=3, seed=7)
        b = ExpanderTopology(n_racks=16, degree=3, seed=7)
        assert (a.distance_matrix == b.distance_matrix).all()

    def test_rejects_odd_product(self):
        with pytest.raises(TopologyError):
            ExpanderTopology(n_racks=7, degree=3)

    def test_rejects_degree_too_large(self):
        with pytest.raises(TopologyError):
            ExpanderTopology(n_racks=5, degree=5)


class TestRegistry:
    def test_lists_known_names(self):
        names = available_topologies()
        for expected in ("fat-tree", "leaf-spine", "star", "ring", "torus", "hypercube", "expander"):
            assert expected in names

    def test_make_topology(self):
        topo = make_topology("leaf-spine", n_racks=6)
        assert topo.n_racks == 6

    def test_make_topology_case_insensitive(self):
        topo = make_topology("Fat-Tree", n_racks=8)
        assert topo.n_racks == 8

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_topology("does-not-exist", n_racks=4)
