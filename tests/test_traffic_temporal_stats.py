"""Tests for the temporal model, trace statistics, IO, and the workload registry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, TrafficError
from repro.traffic import (
    TemporalModel,
    Trace,
    TraceMetadata,
    TrafficMatrix,
    available_workloads,
    compute_trace_statistics,
    interleave_bursts,
    load_trace_csv,
    load_trace_jsonl,
    make_workload,
    save_trace_csv,
    save_trace_jsonl,
    uniform_random_trace,
)


class TestTemporalModel:
    def test_zero_repeat_is_iid(self):
        model = TemporalModel(repeat_probability=0.0)
        matrix = TrafficMatrix.uniform(8)
        pairs = model.generate(matrix, 200, np.random.default_rng(0))
        assert pairs.shape == (200, 2)

    def test_high_repeat_increases_rereference(self):
        matrix = TrafficMatrix.uniform(24)
        rng = np.random.default_rng(1)
        bursty = TemporalModel(repeat_probability=0.8, memory=16).generate(matrix, 3000, rng)
        rng = np.random.default_rng(1)
        iid = TemporalModel(repeat_probability=0.0).generate(matrix, 3000, rng)
        meta = TraceMetadata("x", 24)
        bursty_rate = compute_trace_statistics(Trace(bursty[:, 0], bursty[:, 1], meta)).rereference_rate
        iid_rate = compute_trace_statistics(Trace(iid[:, 0], iid[:, 1], meta)).rereference_rate
        assert bursty_rate > iid_rate + 0.2

    def test_validation(self):
        with pytest.raises(TrafficError):
            TemporalModel(repeat_probability=1.5)
        with pytest.raises(TrafficError):
            TemporalModel(memory=0)
        with pytest.raises(TrafficError):
            TemporalModel(drift_interval=-1)

    def test_zero_requests(self):
        model = TemporalModel()
        out = model.generate(TrafficMatrix.uniform(4), 0, np.random.default_rng(0))
        assert out.shape == (0, 2)

    def test_interleave_bursts(self):
        a = np.array([[0, 1], [0, 1]])
        b = np.array([[2, 3]])
        combined = interleave_bursts([a, b])
        assert combined.shape == (3, 2)

    def test_interleave_rejects_bad_shape(self):
        with pytest.raises(TrafficError):
            interleave_bursts([np.array([[0, 1, 2]])])

    def test_interleave_empty(self):
        assert interleave_bursts([]).shape == (0, 2)


class TestTraceStatistics:
    def test_empty_trace_rejected(self):
        trace = Trace([], [], TraceMetadata("e", 4))
        with pytest.raises(TrafficError):
            compute_trace_statistics(trace)

    def test_single_pair_trace(self):
        trace = Trace.from_pairs([(0, 1)] * 50, n_nodes=4)
        stats = compute_trace_statistics(trace)
        assert stats.n_distinct_pairs == 1
        assert stats.rereference_rate == pytest.approx(49 / 50)
        assert stats.top1pct_share == 1.0

    def test_to_dict_round_trip_keys(self):
        trace = uniform_random_trace(n_nodes=8, n_requests=100, seed=0)
        d = compute_trace_statistics(trace).to_dict()
        assert set(d) >= {"n_requests", "top1pct_share", "rereference_rate"}

    def test_window_validation(self):
        trace = uniform_random_trace(n_nodes=8, n_requests=100, seed=0)
        with pytest.raises(TrafficError):
            compute_trace_statistics(trace, window=0)


class TestTraceIO:
    def test_csv_round_trip(self, tmp_path):
        trace = uniform_random_trace(n_nodes=8, n_requests=50, seed=1)
        path = tmp_path / "trace.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        np.testing.assert_array_equal(trace.sources, loaded.sources)
        np.testing.assert_array_equal(trace.destinations, loaded.destinations)
        assert loaded.name == trace.name
        assert loaded.n_nodes == trace.n_nodes

    def test_jsonl_round_trip(self, tmp_path):
        trace = uniform_random_trace(n_nodes=6, n_requests=30, seed=2)
        path = tmp_path / "trace.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        np.testing.assert_array_equal(trace.sources, loaded.sources)
        assert loaded.metadata.params == dict(trace.metadata.params)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TrafficError):
            load_trace_csv(tmp_path / "nope.csv")
        with pytest.raises(TrafficError):
            load_trace_jsonl(tmp_path / "nope.jsonl")

    def test_csv_missing_header(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("src,dst\n0,1\n")
        with pytest.raises(TrafficError):
            load_trace_csv(path)


class TestWorkloadRegistry:
    def test_lists_paper_workloads(self):
        names = available_workloads()
        for expected in ("facebook-database", "facebook-web", "facebook-hadoop",
                         "microsoft", "uniform", "zipf", "hotspot", "permutation"):
            assert expected in names

    def test_make_workload(self):
        trace = make_workload("uniform", n_nodes=8, n_requests=20, seed=0)
        assert len(trace) == 20

    def test_unknown_workload(self):
        with pytest.raises(ConfigurationError):
            make_workload("not-a-workload")
