"""Tests for the ASCII plotting utilities."""

import numpy as np
import pytest

from repro.analysis import ascii_line_chart, plot_results
from repro.errors import SimulationError
from repro.simulation import CheckpointSeries, RunResult, aggregate_runs


def _aggregate(algorithm, values):
    n = len(values)
    series = CheckpointSeries(
        requests=np.arange(1, n + 1, dtype=np.int64) * 10,
        routing_cost=np.asarray(values, dtype=float),
        reconfiguration_cost=np.zeros(n),
        elapsed_seconds=np.linspace(0.01, 0.2, n),
        matched_fraction=np.linspace(0, 1, n),
    )
    return aggregate_runs([
        RunResult(algorithm=algorithm, workload="w", topology="t", b=2, alpha=1.0,
                  n_requests=n * 10, seed=0, series=series,
                  total_routing_cost=float(values[-1]), total_reconfiguration_cost=0.0,
                  total_elapsed_seconds=0.2, matched_fraction=1.0)
    ])


class TestAsciiLineChart:
    def test_contains_title_legend_and_axes(self):
        chart = ascii_line_chart([0, 1, 2, 3], {"a": [0, 1, 2, 3], "b": [3, 2, 1, 0]},
                                 title="demo", y_label="cost")
        assert "demo" in chart
        assert "legend:" in chart
        assert "o a" in chart and "x b" in chart
        assert "y: cost" in chart

    def test_dimensions(self):
        chart = ascii_line_chart([0, 1], {"a": [0, 1]}, width=40, height=10)
        plot_lines = [line for line in chart.splitlines() if "|" in line]
        assert len(plot_lines) == 10
        assert all(len(line) <= 12 + 40 for line in plot_lines)

    def test_monotone_series_marks_corners(self):
        chart = ascii_line_chart([0, 1, 2], {"up": [0.0, 5.0, 10.0]}, width=30, height=8)
        rows = [line.split("|", 1)[1] for line in chart.splitlines() if "|" in line]
        # The marker must appear in the top row (right end) and bottom row (left end).
        assert "o" in rows[0]
        assert "o" in rows[-1]
        assert rows[0].rindex("o") > rows[-1].index("o")

    def test_constant_series_handled(self):
        chart = ascii_line_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
        assert "o" in chart

    def test_validation(self):
        with pytest.raises(SimulationError):
            ascii_line_chart([0, 1], {})
        with pytest.raises(SimulationError):
            ascii_line_chart([0], {"a": [1]})
        with pytest.raises(SimulationError):
            ascii_line_chart([0, 1], {"a": [1, 2, 3]})
        with pytest.raises(SimulationError):
            ascii_line_chart([0, 1], {"a": [1, 2]}, width=4, height=2)


class TestPlotResults:
    def test_plots_metric(self):
        results = {
            "rbma": _aggregate("rbma", [1, 2, 3, 4]),
            "oblivious": _aggregate("oblivious", [2, 4, 6, 8]),
        }
        chart = plot_results(results, metric="routing_cost", title="fig")
        assert "fig" in chart and "rbma" in chart and "oblivious" in chart

    def test_rejects_empty_and_mismatched(self):
        with pytest.raises(SimulationError):
            plot_results({})
        results = {"a": _aggregate("a", [1, 2, 3]), "b": _aggregate("b", [1, 2])}
        with pytest.raises(SimulationError):
            plot_results(results)
