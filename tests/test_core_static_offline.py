"""Tests for SO-BMA, the static offline maximum-weight matching baseline."""

import pytest

from repro.config import MatchingConfig
from repro.core import ObliviousRouting, StaticOfflineBMA
from repro.errors import ConfigurationError
from repro.matching.validation import check_b_matching
from repro.traffic import hotspot_trace, zipf_pair_trace
from repro.types import Request


class TestFitting:
    def test_requires_full_trace_flag(self, small_fattree):
        algo = StaticOfflineBMA(small_fattree, MatchingConfig(b=2, alpha=4))
        assert algo.requires_full_trace is True
        assert algo.fitted is False

    def test_fit_installs_valid_matching(self, small_fattree, fb_like_trace):
        algo = StaticOfflineBMA(small_fattree, MatchingConfig(b=3, alpha=4))
        algo.fit(list(fb_like_trace.requests()))
        assert algo.fitted
        assert len(algo.matching) > 0
        check_b_matching(algo.matching.edges, small_fattree.n_racks, 3)

    def test_fit_charges_setup_reconfiguration(self, small_fattree, fb_like_trace):
        config = MatchingConfig(b=3, alpha=4)
        algo = StaticOfflineBMA(small_fattree, config)
        algo.fit(list(fb_like_trace.requests()))
        assert algo.total_reconfiguration_cost == pytest.approx(len(algo.matching) * config.alpha)

    def test_matches_hot_pairs(self, small_fattree):
        trace = hotspot_trace(n_nodes=16, n_requests=2000, n_hot_pairs=4,
                              hot_fraction=0.95, seed=1)
        algo = StaticOfflineBMA(small_fattree, MatchingConfig(b=2, alpha=4))
        algo.fit(list(trace.requests()))
        counts = trace.pair_counts()
        top_pairs = sorted(counts, key=counts.get, reverse=True)[:2]
        for pair in top_pairs:
            assert pair in algo.matching

    def test_never_reconfigures_while_serving(self, small_fattree, fb_like_trace):
        algo = StaticOfflineBMA(small_fattree, MatchingConfig(b=2, alpha=4))
        requests = list(fb_like_trace.requests())
        algo.fit(requests)
        before = set(algo.matching.edges)
        for request in requests:
            algo.serve(request)
        assert set(algo.matching.edges) == before

    def test_greedy_solver_option(self, small_fattree, fb_like_trace):
        algo = StaticOfflineBMA(small_fattree, MatchingConfig(b=3, alpha=4), solver="greedy")
        algo.fit(list(fb_like_trace.requests()))
        check_b_matching(algo.matching.edges, small_fattree.n_racks, 3)

    def test_unknown_solver_rejected(self, small_fattree):
        with pytest.raises(ConfigurationError):
            StaticOfflineBMA(small_fattree, MatchingConfig(b=2, alpha=4), solver="ilp")

    def test_beats_oblivious_on_skewed_traffic(self, small_fattree):
        trace = zipf_pair_trace(n_nodes=16, n_requests=3000, exponent=1.5, seed=4)
        config = MatchingConfig(b=4, alpha=4)
        so = StaticOfflineBMA(small_fattree, config)
        so.serve_all(list(trace.requests()))
        oblivious = ObliviousRouting(small_fattree, config)
        oblivious.serve_all(list(trace.requests()))
        assert so.total_routing_cost < 0.9 * oblivious.total_routing_cost

    def test_reset_clears_fit(self, small_fattree, fb_like_trace):
        algo = StaticOfflineBMA(small_fattree, MatchingConfig(b=2, alpha=4))
        algo.fit(list(fb_like_trace.requests()))
        algo.reset()
        assert not algo.fitted
        assert len(algo.matching) == 0
