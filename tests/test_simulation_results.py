"""Tests for result containers, aggregation and serialisation."""

import numpy as np
import pytest

from repro.config import MatchingConfig, SimulationConfig
from repro.core import RBMA
from repro.errors import SimulationError
from repro.simulation import CheckpointSeries, RunResult, aggregate_runs, run_simulation
from repro.traffic import zipf_pair_trace


def _series(values):
    n = len(values)
    return CheckpointSeries(
        requests=np.arange(1, n + 1, dtype=np.int64),
        routing_cost=np.asarray(values, dtype=float),
        reconfiguration_cost=np.zeros(n),
        elapsed_seconds=np.linspace(0.1, 0.5, n),
        matched_fraction=np.linspace(0, 1, n),
    )


def _result(algorithm="rbma", b=2, routing=10.0, seed=0):
    series = _series([routing / 2, routing])
    return RunResult(
        algorithm=algorithm,
        workload="w",
        topology="t",
        b=b,
        alpha=4.0,
        n_requests=2,
        seed=seed,
        series=series,
        total_routing_cost=routing,
        total_reconfiguration_cost=1.0,
        total_elapsed_seconds=0.5,
        matched_fraction=0.5,
    )


class TestCheckpointSeries:
    def test_total_cost(self):
        series = _series([1.0, 2.0])
        np.testing.assert_allclose(series.total_cost, [1.0, 2.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(SimulationError):
            CheckpointSeries(
                requests=np.array([1, 2]),
                routing_cost=np.array([1.0]),
                reconfiguration_cost=np.array([0.0, 0.0]),
                elapsed_seconds=np.array([0.0, 0.1]),
                matched_fraction=np.array([0.0, 0.1]),
            )

    def test_dict_round_trip(self):
        series = _series([1.0, 3.0, 5.0])
        restored = CheckpointSeries.from_dict(series.to_dict())
        np.testing.assert_allclose(restored.routing_cost, series.routing_cost)
        np.testing.assert_array_equal(restored.requests, series.requests)


class TestRunResult:
    def test_total_cost(self):
        assert _result(routing=10.0).total_cost == pytest.approx(11.0)

    def test_json_round_trip(self, tmp_path):
        result = _result()
        path = tmp_path / "result.json"
        result.save_json(path)
        loaded = RunResult.load_json(path)
        assert loaded.algorithm == result.algorithm
        assert loaded.total_routing_cost == result.total_routing_cost
        np.testing.assert_allclose(loaded.series.routing_cost, result.series.routing_cost)

    def test_from_real_simulation_serialisable(self, small_leafspine, tmp_path):
        trace = zipf_pair_trace(n_nodes=8, n_requests=100, seed=0)
        algo = RBMA(small_leafspine, MatchingConfig(b=2, alpha=4), rng=0)
        result = run_simulation(algo, trace, SimulationConfig(checkpoints=5))
        path = tmp_path / "run.json"
        result.save_json(path)
        assert RunResult.load_json(path).n_requests == 100


class TestAggregateRuns:
    def test_mean_of_finals(self):
        agg = aggregate_runs([_result(routing=10.0, seed=0), _result(routing=20.0, seed=1)])
        assert agg.routing_cost_mean == pytest.approx(15.0)
        assert agg.repetitions == 2
        assert agg.routing_cost_std == pytest.approx(5.0)

    def test_series_averaged(self):
        agg = aggregate_runs([_result(routing=10.0), _result(routing=30.0)])
        np.testing.assert_allclose(agg.series.routing_cost, [10.0, 20.0])

    def test_label(self):
        agg = aggregate_runs([_result(b=12)])
        assert agg.label == "rbma (b: 12)"

    def test_mixed_configs_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_runs([_result(b=2), _result(b=4)])
        with pytest.raises(SimulationError):
            aggregate_runs([_result(algorithm="rbma"), _result(algorithm="bma")])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            aggregate_runs([])

    def test_to_dict(self):
        agg = aggregate_runs([_result()])
        d = agg.to_dict()
        assert d["algorithm"] == "rbma"
        assert "series" in d
