"""Tests for repro.config: validation of experiment configurations."""

import pytest

from repro.config import MatchingConfig, SimulationConfig, SweepConfig
from repro.errors import ConfigurationError


class TestMatchingConfig:
    def test_defaults(self):
        cfg = MatchingConfig(b=4)
        assert cfg.alpha == 1.0
        assert cfg.effective_a == 4

    def test_explicit_a(self):
        cfg = MatchingConfig(b=6, a=2)
        assert cfg.effective_a == 2
        assert cfg.augmentation_ratio() == pytest.approx(6 / 5)

    def test_augmentation_ratio_equal_ab(self):
        assert MatchingConfig(b=8).augmentation_ratio() == pytest.approx(8.0)

    def test_rejects_bad_b(self):
        with pytest.raises(ConfigurationError):
            MatchingConfig(b=0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            MatchingConfig(b=2, alpha=0.5)

    def test_rejects_a_above_b(self):
        with pytest.raises(ConfigurationError):
            MatchingConfig(b=2, a=3)

    def test_rejects_a_below_one(self):
        with pytest.raises(ConfigurationError):
            MatchingConfig(b=2, a=0)

    def test_to_dict_includes_effective_a(self):
        d = MatchingConfig(b=3, alpha=2.0).to_dict()
        assert d["a"] == 3
        assert d["b"] == 3
        assert d["alpha"] == 2.0


class TestSimulationConfig:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.checkpoints >= 1

    def test_rejects_zero_checkpoints(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(checkpoints=0)

    def test_rejects_zero_repetitions(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(repetitions=0)

    def test_rejects_non_integral_checkpoint_positions(self):
        """Regression: int(10.7) used to silently truncate the position."""
        with pytest.raises(ConfigurationError, match="truncate"):
            SimulationConfig(checkpoint_positions=(10.7,))
        # Truncation of (10, 10.7) would even break the strictly-increasing
        # contract after validation claimed to enforce it.
        with pytest.raises(ConfigurationError, match="integers"):
            SimulationConfig(checkpoint_positions=(10, 10.7))
        with pytest.raises(ConfigurationError, match="integers"):
            SimulationConfig(checkpoint_positions=("3",))

    def test_accepts_integral_float_checkpoint_positions(self):
        """JSON round-trips may deliver 10.0 for 10; both must coerce losslessly."""
        cfg = SimulationConfig(checkpoint_positions=(1, 10.0, 20))
        assert cfg.checkpoint_positions == (1, 10, 20)
        assert all(isinstance(p, int) for p in cfg.checkpoint_positions)

    def test_matching_backend_numba_is_always_a_valid_name(self):
        """'numba' validates everywhere; availability is resolved at build time."""
        assert SimulationConfig(matching_backend="numba").matching_backend == "numba"

    def test_rejects_unknown_matching_backend(self):
        with pytest.raises(ConfigurationError, match="unknown matching_backend"):
            SimulationConfig(matching_backend="cython")


class TestSweepConfig:
    def test_combinations_cross_product(self):
        sweep = SweepConfig(b_values=(2, 4), alpha_values=(1.0, 5.0), algorithms=("rbma", "bma"))
        combos = sweep.combinations()
        assert len(combos) == 8
        assert ("rbma", 2, 1.0) in combos
        assert ("bma", 4, 5.0) in combos

    def test_combinations_order_deterministic(self):
        sweep = SweepConfig(b_values=(2, 4), alpha_values=(1.0,), algorithms=("rbma",))
        assert sweep.combinations() == [("rbma", 2, 1.0), ("rbma", 4, 1.0)]

    def test_rejects_empty_lists(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(b_values=())
        with pytest.raises(ConfigurationError):
            SweepConfig(alpha_values=())
        with pytest.raises(ConfigurationError):
            SweepConfig(algorithms=())

    def test_rejects_invalid_values(self):
        with pytest.raises(ConfigurationError):
            SweepConfig(b_values=(0,))
        with pytest.raises(ConfigurationError):
            SweepConfig(alpha_values=(0.0,))
