"""Tests for flow-level workload generation."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import Flow, TrafficMatrix, flows_to_trace, generate_flows
from repro.traffic.stats import compute_trace_statistics


class TestGenerateFlows:
    def test_basic_properties(self):
        matrix = TrafficMatrix.uniform(10)
        flows = generate_flows(matrix, n_flows=200, seed=0)
        assert len(flows) == 200
        assert all(f.size >= 1 for f in flows)
        assert all(f.src != f.dst for f in flows)
        starts = [f.start for f in flows]
        assert starts == sorted(starts)

    def test_elephants_increase_total_size(self):
        matrix = TrafficMatrix.uniform(10)
        mice_only = generate_flows(matrix, 500, elephant_fraction=0.0, seed=1)
        with_elephants = generate_flows(matrix, 500, elephant_fraction=0.2,
                                        elephant_multiplier=30.0, seed=1)
        assert sum(f.size for f in with_elephants) > sum(f.size for f in mice_only)

    def test_validation(self):
        matrix = TrafficMatrix.uniform(4)
        with pytest.raises(TrafficError):
            generate_flows(matrix, -1)
        with pytest.raises(TrafficError):
            generate_flows(matrix, 10, elephant_fraction=1.5)
        with pytest.raises(TrafficError):
            generate_flows(matrix, 10, mean_flow_size=0.5)

    def test_reproducible(self):
        matrix = TrafficMatrix.uniform(8)
        a = generate_flows(matrix, 50, seed=3)
        b = generate_flows(matrix, 50, seed=3)
        assert a == b


class TestFlowsToTrace:
    def _flows(self):
        return [
            Flow(0, 1, size=5, start=0.0),
            Flow(2, 3, size=3, start=1.0),
            Flow(1, 4, size=2, start=2.0),
        ]

    def test_request_count_is_total_size(self):
        trace = flows_to_trace(self._flows(), n_nodes=6, seed=0)
        assert len(trace) == 10

    def test_sequential_mode_keeps_flows_contiguous(self):
        trace = flows_to_trace(self._flows(), n_nodes=6, interleave=False)
        pairs = list(trace.pairs())
        assert pairs == [(0, 1)] * 5 + [(2, 3)] * 3 + [(1, 4)] * 2

    def test_interleaved_mode_mixes_flows(self):
        flows = [Flow(0, 1, size=50, start=0.0), Flow(2, 3, size=50, start=0.0)]
        trace = flows_to_trace(flows, n_nodes=4, seed=1, interleave=True)
        pairs = list(trace.pairs())
        # Both flows appear in the first half: they are genuinely interleaved.
        first_half = set(pairs[:50])
        assert {(0, 1), (2, 3)} <= first_half

    def test_interleave_respects_concurrency_admission(self):
        flows = [Flow(0, 1, size=4, start=float(i)) for i in range(10)]
        trace = flows_to_trace(flows, n_nodes=4, seed=0, concurrency=2)
        assert len(trace) == 40

    def test_burstiness_higher_without_interleaving(self):
        matrix = TrafficMatrix.uniform(12)
        flows = generate_flows(matrix, 150, mean_flow_size=30, seed=2)
        seq = flows_to_trace(flows, 12, interleave=False)
        mixed = flows_to_trace(flows, 12, seed=2, interleave=True)
        seq_stats = compute_trace_statistics(seq, window=8)
        mixed_stats = compute_trace_statistics(mixed, window=8)
        assert seq_stats.rereference_rate >= mixed_stats.rereference_rate

    def test_validation(self):
        with pytest.raises(TrafficError):
            flows_to_trace([], n_nodes=4)
        with pytest.raises(TrafficError):
            flows_to_trace(self._flows(), n_nodes=6, concurrency=0)
