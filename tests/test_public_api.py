"""Public-API contract: ``repro.__all__`` stays importable and stable.

Guards the package surface across refactors: every exported name must be a
real attribute, the pre-redesign names must keep working (the legacy registry
entry points and ``RunSpec`` are shims now, not gone), and the new
declarative API must be reachable from the package root.
"""

import pytest

import repro

pytestmark = pytest.mark.smoke

#: Names that existed before the ExperimentSpec redesign and must never break.
LEGACY_EXPORTS = [
    "__version__",
    "MatchingConfig", "SimulationConfig", "SweepConfig",
    "ReproError", "ConfigurationError", "TopologyError", "TrafficError",
    "MatchingError", "DegreeConstraintError", "PagingError", "SimulationError",
    "SolverError",
    "Request", "NodePair", "canonical_pair", "BMatching",
    "OnlineBMatchingAlgorithm", "RBMA", "BMA", "ObliviousRouting", "GreedyBMA",
    "StaticOfflineBMA", "UniformBMatching", "PredictiveBMA",
    "available_algorithms", "make_algorithm",
    "run_simulation", "run_sweep", "RunSpec", "RunResult", "AggregateResult",
    "ExperimentRunner",
]

#: The declarative-experiment surface added by the redesign.
SPEC_EXPORTS = [
    "Registry",
    "ExperimentSpec", "AlgorithmSpec", "TrafficSpec", "TopologySpec",
    "expand_grid", "spawn_seeds",
    "SimulationObserver", "ProgressObserver", "ValidationObserver",
    "CostTraceObserver",
    "run_experiments", "execute_run_spec", "execute_experiment_spec",
]


def test_all_names_are_importable():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, f"repro.{name} is broken"


@pytest.mark.parametrize("name", LEGACY_EXPORTS)
def test_legacy_export_present(name):
    assert name in repro.__all__
    assert getattr(repro, name, None) is not None


@pytest.mark.parametrize("name", SPEC_EXPORTS)
def test_spec_export_present(name):
    assert name in repro.__all__
    assert getattr(repro, name, None) is not None


def test_no_duplicate_exports():
    assert len(repro.__all__) == len(set(repro.__all__))


class TestLegacyRegistryShims:
    """The four pre-redesign registry modules keep their entry points."""

    def test_core_shims(self):
        from repro.core.registry import (
            available_algorithms,
            make_algorithm,
            register_algorithm,
        )
        from repro.config import MatchingConfig
        from repro.topology import LeafSpineTopology

        assert "rbma" in available_algorithms()
        algo = make_algorithm("rbma", LeafSpineTopology(4), MatchingConfig(b=1), rng=0)
        assert algo.name == "rbma"
        assert callable(register_algorithm)

    def test_topology_shims(self):
        from repro.topology.registry import (
            available_topologies,
            make_topology,
            register_topology,
        )

        assert "fat-tree" in available_topologies()
        assert make_topology("ring", n_racks=4).n_racks == 4
        assert callable(register_topology)

    def test_traffic_shims(self):
        from repro.traffic.registry import (
            available_workloads,
            make_workload,
            register_workload,
        )

        assert "microsoft" in available_workloads()
        assert len(make_workload("uniform", n_nodes=4, n_requests=10, seed=0)) == 10
        assert callable(register_workload)

    def test_paging_shims(self):
        from repro.paging.registry import (
            available_paging_policies,
            make_paging_factory,
        )

        assert "marking" in available_paging_policies()
        factory = make_paging_factory("lru")
        assert factory(2, None).capacity == 2

    def test_register_shims_feed_the_generic_registries(self):
        from repro.core.registry import ALGORITHMS, register_algorithm
        from repro.errors import ConfigurationError

        class _Fake:
            pass

        register_algorithm("test-only-fake", _Fake)
        try:
            assert "test-only-fake" in ALGORITHMS
            with pytest.raises(ConfigurationError):
                register_algorithm("test-only-fake", _Fake)
        finally:
            ALGORITHMS.unregister("test-only-fake")
        assert "test-only-fake" not in ALGORITHMS


def test_legacy_runspec_constructor_signature_unchanged():
    from repro import RunSpec

    spec = RunSpec(algorithm="rbma", workload="zipf", b=2, alpha=4.0,
                   topology="fat-tree", workload_kwargs={}, topology_kwargs={},
                   algorithm_kwargs={}, seed=None, checkpoints=20)
    assert spec.with_seed(3).seed == 3


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") >= 1
