"""Tests for b-matching validation helpers."""

import pytest

from repro.errors import MatchingError
from repro.matching import check_b_matching, is_valid_b_matching
from repro.matching.validation import degree_histogram


class TestValidation:
    def test_valid_matching_accepted(self):
        edges = [(0, 1), (2, 3), (0, 2)]
        check_b_matching(edges, 4, b=2)
        assert is_valid_b_matching(edges, 4, b=2)

    def test_degree_violation_detected(self):
        edges = [(0, 1), (0, 2), (0, 3)]
        assert not is_valid_b_matching(edges, 4, b=2)
        with pytest.raises(MatchingError, match="degree"):
            check_b_matching(edges, 4, b=2)

    def test_duplicate_edge_detected(self):
        with pytest.raises(MatchingError, match="duplicate"):
            check_b_matching([(0, 1), (1, 0)], 4, b=2)

    def test_self_loop_detected(self):
        with pytest.raises(MatchingError, match="self-loop"):
            check_b_matching([(1, 1)], 4, b=2)

    def test_out_of_range_detected(self):
        with pytest.raises(MatchingError, match="out of range"):
            check_b_matching([(0, 7)], 4, b=2)

    def test_empty_matching_valid(self):
        assert is_valid_b_matching([], 4, b=1)

    def test_degree_histogram(self):
        edges = [(0, 1), (0, 2), (1, 2)]
        assert degree_histogram(edges, 4) == [2, 2, 2, 0]
