"""Tests for the streaming trace protocol (repro.traffic.stream and friends).

The load-bearing guarantee is *bit-identity*: for every registered workload
and any chunk size, the concatenated stream segments equal the bulk-generated
trace array-for-array, and the incremental statistics accumulator reproduces
the bulk statistics float-for-float.  The engine-level counterpart lives in
``tests/test_streaming_engine.py``.
"""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import (
    DEFAULT_CHUNK_SIZE,
    Trace,
    TraceStream,
    TraceStatisticsAccumulator,
    compute_trace_statistics,
    fork_generator,
    load_trace_csv,
    load_trace_jsonl,
    make_workload,
    make_workload_stream,
    save_trace_csv,
    save_trace_jsonl,
    stream_trace_csv,
    stream_trace_jsonl,
    uniform_random_trace,
    zipf_pair_trace,
)
from repro.traffic.base import TraceMetadata
from repro.traffic.registry import WORKLOAD_STREAMS
from repro.traffic.stream import chunk_bounds, validate_chunk_size

#: Workload name -> generator kwargs, covering every registered family
#: (facebook-hadoop has no chunked generator and exercises the
#: materialize-then-slice fallback in make_workload_stream).
WORKLOADS = {
    "uniform": dict(n_nodes=12, n_requests=700),
    "zipf": dict(n_nodes=12, n_requests=700),
    "hotspot": dict(n_nodes=12, n_requests=700),
    "permutation": dict(n_nodes=12, n_requests=700),
    "facebook-database": dict(n_nodes=12, n_requests=700),
    "facebook-web": dict(n_nodes=12, n_requests=700),
    "facebook-hadoop": dict(n_nodes=12, n_requests=700),
    "microsoft": dict(n_nodes=12, n_requests=700),
}

CHUNK_SIZES = (1, 7, 128, 699, 700, 5000)


def _concat(stream):
    segments = list(stream)
    return (
        np.concatenate([s.sources for s in segments]),
        np.concatenate([s.destinations for s in segments]),
        segments,
    )


class TestFortGenerator:
    def test_advance_equals_consumption(self):
        base = np.random.default_rng(42)
        burned = np.random.default_rng(42)
        burned.random(10)
        fork = fork_generator(np.random.default_rng(42), 10)
        assert fork.random(5).tolist() == burned.random(5).tolist()
        # The source is left untouched.
        assert base.random(1).tolist() == np.random.default_rng(42).random(1).tolist()

    def test_requires_pcg64(self):
        rng = np.random.Generator(np.random.MT19937(1))
        with pytest.raises(TrafficError, match="PCG64"):
            fork_generator(rng, 3)


@pytest.mark.parametrize("workload", sorted(WORKLOADS))
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
def test_stream_matches_bulk(workload, chunk_size):
    """Streamed segments concatenate to the bulk trace, any chunk size."""
    kwargs = dict(WORKLOADS[workload], seed=17)
    bulk = make_workload(workload, **kwargs)
    stream = make_workload_stream(workload, chunk_size=chunk_size, **kwargs)
    src, dst, segments = _concat(stream)
    assert np.array_equal(src, bulk.sources)
    assert np.array_equal(dst, bulk.destinations)
    assert stream.n_requests == len(bulk)
    assert stream.metadata.name == bulk.metadata.name
    assert stream.metadata.n_nodes == bulk.metadata.n_nodes
    assert stream.metadata.seed == bulk.metadata.seed
    assert stream.metadata.params == bulk.metadata.params
    # Segment sizes honour the chunk bound; offsets tile the trace.
    assert all(len(s) <= chunk_size for s in segments)
    position = 0
    for segment in segments:
        assert segment.offset == position
        position += len(segment)


def test_every_streamable_workload_is_registered():
    """All families except facebook-hadoop have a true chunked generator."""
    assert sorted(WORKLOAD_STREAMS.names()) == sorted(
        name for name in WORKLOADS if name != "facebook-hadoop"
    )


def test_stream_segment_timestamps_are_global():
    stream = make_workload_stream("zipf", chunk_size=100, n_nodes=8,
                                  n_requests=350, seed=5)
    timestamps = [r.timestamp for segment in stream for r in segment.requests()]
    assert timestamps == [float(i) for i in range(350)]


def test_generator_streams_are_reiterable():
    stream = make_workload_stream("uniform", chunk_size=64, n_nodes=8,
                                  n_requests=200, seed=9)
    first = _concat(stream)[:2]
    second = _concat(stream)[:2]
    assert np.array_equal(first[0], second[0])
    assert np.array_equal(first[1], second[1])


def test_plain_iterable_stream_is_single_use():
    trace = uniform_random_trace(n_nodes=6, n_requests=30, seed=1)
    stream = TraceStream([trace[:15], trace[15:]], trace.metadata, n_requests=30)
    assert sum(len(s) for s in stream) == 30
    with pytest.raises(TrafficError, match="already been consumed"):
        list(stream)


def test_declared_length_mismatch_rejected():
    trace = uniform_random_trace(n_nodes=6, n_requests=30, seed=1)
    stream = TraceStream([trace[:15]], trace.metadata, n_requests=30)
    with pytest.raises(TrafficError, match="declared 30"):
        list(stream)


def test_from_trace_roundtrip_and_empty_segments_skipped():
    trace = zipf_pair_trace(n_nodes=8, n_requests=100, seed=2)
    stream = TraceStream.from_trace(trace, chunk_size=33)
    assert np.array_equal(stream.materialize().sources, trace.sources)
    # Empty segments are dropped, not yielded.
    padded = TraceStream(
        [trace[:50], trace[50:50], trace[50:]], trace.metadata, n_requests=100
    )
    assert [len(s) for s in padded] == [50, 50]


def test_chunk_size_validation():
    assert validate_chunk_size(None) == DEFAULT_CHUNK_SIZE
    assert validate_chunk_size(5) == 5
    for bad in (0, -3, 2.5):
        with pytest.raises(TrafficError, match="chunk_size"):
            validate_chunk_size(bad)
    assert list(chunk_bounds(10, 4)) == [(0, 4), (4, 8), (8, 10)]


class TestTee:
    def _stream(self, n_requests=120, chunk_size=30):
        return make_workload_stream("uniform", chunk_size=chunk_size,
                                    n_nodes=8, n_requests=n_requests, seed=4)

    def test_children_see_identical_segments(self):
        stream = self._stream()
        bulk = stream.materialize()
        children = stream.tee(3)
        iters = [iter(c) for c in children]
        collected = [[] for _ in iters]
        for segments in zip(*iters):
            for bucket, segment in zip(collected, segments):
                bucket.append(segment)
        for bucket in collected:
            assert np.array_equal(
                np.concatenate([s.sources for s in bucket]), bulk.sources
            )
            assert [s.offset for s in bucket] == [0, 30, 60, 90]

    def test_lookahead_bound_enforced(self):
        children = self._stream().tee(2, max_lookahead=2)
        fast = iter(children[0])
        next(fast), next(fast)
        with pytest.raises(TrafficError, match="lockstep"):
            next(fast)

    def test_bad_arguments_rejected(self):
        stream = self._stream()
        with pytest.raises(TrafficError, match="n >= 1"):
            stream.tee(0)
        with pytest.raises(TrafficError, match="max_lookahead"):
            stream.tee(2, max_lookahead=0)


class TestStatisticsAccumulator:
    @pytest.mark.parametrize("workload", ["zipf", "facebook-database", "uniform"])
    @pytest.mark.parametrize("chunk_size", (1, 37, 250, 1000))
    def test_bit_identical_to_bulk(self, workload, chunk_size):
        bulk = make_workload(workload, n_nodes=10, n_requests=600, seed=6)
        stream = make_workload_stream(workload, chunk_size=chunk_size,
                                      n_nodes=10, n_requests=600, seed=6)
        assert compute_trace_statistics(stream) == compute_trace_statistics(bulk)

    def test_manual_updates(self):
        trace = zipf_pair_trace(n_nodes=8, n_requests=200, seed=3)
        acc = TraceStatisticsAccumulator(trace.n_nodes)
        acc.update(trace[:77])
        acc.update(trace[77:])
        assert acc.n_requests == 200
        assert acc.finalize() == compute_trace_statistics(trace)

    def test_empty_rejected(self):
        acc = TraceStatisticsAccumulator(8)
        with pytest.raises(TrafficError, match="empty"):
            acc.finalize()
        with pytest.raises(TrafficError, match="racks"):
            TraceStatisticsAccumulator(1)
        with pytest.raises(TrafficError, match="window"):
            TraceStatisticsAccumulator(8, window=0)


class TestStreamIO:
    def _trace(self):
        return zipf_pair_trace(n_nodes=9, n_requests=250, seed=8)

    @pytest.mark.parametrize("chunk_size", (1, 64, 1000))
    def test_csv_stream_matches_load(self, tmp_path, chunk_size):
        trace = self._trace()
        path = tmp_path / "t.csv"
        save_trace_csv(trace, path)
        loaded = load_trace_csv(path)
        stream = stream_trace_csv(path, chunk_size=chunk_size)
        src, dst, _ = _concat(stream)
        assert np.array_equal(src, loaded.sources)
        assert np.array_equal(dst, loaded.destinations)
        assert stream.name == loaded.name
        # Re-iterable: the factory re-opens the file.
        assert np.array_equal(_concat(stream)[0], loaded.sources)

    @pytest.mark.parametrize("chunk_size", (1, 64, 1000))
    def test_jsonl_stream_matches_load(self, tmp_path, chunk_size):
        trace = self._trace()
        path = tmp_path / "t.jsonl"
        save_trace_jsonl(trace, path)
        loaded = load_trace_jsonl(path)
        stream = stream_trace_jsonl(path, chunk_size=chunk_size)
        src, dst, _ = _concat(stream)
        assert np.array_equal(src, loaded.sources)
        assert np.array_equal(dst, loaded.destinations)

    def test_numpy_scalar_metadata_roundtrips(self, tmp_path):
        """Satellite: headers funnel through the canonical path, so numpy
        scalars in seed/params serialise instead of crashing json.dumps."""
        trace = self._trace()
        doctored = Trace(
            trace.sources,
            trace.destinations,
            TraceMetadata(
                name="doctored",
                n_nodes=np.int64(trace.n_nodes),
                seed=np.int64(8),
                params={"exponent": np.float64(1.2), "count": np.int32(250)},
            ),
        )
        for save, load, name in (
            (save_trace_csv, load_trace_csv, "np.csv"),
            (save_trace_jsonl, load_trace_jsonl, "np.jsonl"),
        ):
            path = tmp_path / name
            save(doctored, path)
            loaded = load(path)
            assert loaded.metadata.seed == 8
            assert loaded.metadata.params == {"exponent": 1.2, "count": 250}

    def test_unserialisable_metadata_rejected(self, tmp_path):
        trace = self._trace()
        bad = Trace(
            trace.sources, trace.destinations,
            TraceMetadata(name="bad", n_nodes=trace.n_nodes, seed=None,
                          params={"matrix": object()}),
        )
        with pytest.raises(TrafficError, match="not serialisable"):
            save_trace_csv(bad, tmp_path / "bad.csv")

    def test_ragged_csv_row_names_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        save_trace_csv(self._trace(), path)
        lines = path.read_text().splitlines()
        lines[5] = "1,2,3"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TrafficError, match=r"line 6.*expected 2 columns"):
            load_trace_csv(path)
        with pytest.raises(TrafficError, match=r"line 6"):
            list(stream_trace_csv(path, chunk_size=2))

    def test_non_integer_csv_row_names_line(self, tmp_path):
        path = tmp_path / "float.csv"
        save_trace_csv(self._trace(), path)
        lines = path.read_text().splitlines()
        lines[7] = "1,2.5"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TrafficError, match=r"line 8.*malformed request row"):
            load_trace_csv(path)

    def test_malformed_jsonl_record_names_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        save_trace_jsonl(self._trace(), path)
        lines = path.read_text().splitlines()
        lines[4] = '{"i": 3, "src": 1}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TrafficError, match=r"line 5.*malformed request record"):
            load_trace_jsonl(path)

    def test_jsonl_stream_requires_leading_metadata(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        path.write_text('{"i": 0, "src": 1, "dst": 2}\n')
        with pytest.raises(TrafficError, match="metadata line"):
            stream_trace_jsonl(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TrafficError, match="does not exist"):
            stream_trace_csv(tmp_path / "nope.csv")
        with pytest.raises(TrafficError, match="does not exist"):
            stream_trace_jsonl(tmp_path / "nope.jsonl")
