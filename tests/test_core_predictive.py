"""Tests for the prediction-augmented extension (PredictiveBMA)."""

import pytest

from repro.config import MatchingConfig
from repro.core import PredictiveBMA
from repro.core.predictive import SlidingWindowPredictor
from repro.errors import ConfigurationError
from repro.matching.validation import check_b_matching
from repro.traffic import zipf_pair_trace
from repro.types import Request


class TestSlidingWindowPredictor:
    def test_accumulates_weights(self):
        p = SlidingWindowPredictor(window=10)
        p.observe((0, 1), 3.0)
        p.observe((0, 1), 1.0)
        p.observe((2, 3), 2.0)
        weights = p.predicted_weights()
        assert weights[(0, 1)] == pytest.approx(4.0)
        assert weights[(2, 3)] == pytest.approx(2.0)

    def test_window_expires_old_observations(self):
        p = SlidingWindowPredictor(window=2)
        p.observe((0, 1), 1.0)
        p.observe((2, 3), 1.0)
        p.observe((4, 5), 1.0)  # pushes (0, 1) out
        weights = p.predicted_weights()
        assert (0, 1) not in weights
        assert set(weights) == {(2, 3), (4, 5)}

    def test_reset(self):
        p = SlidingWindowPredictor(window=4)
        p.observe((0, 1), 1.0)
        p.reset()
        assert p.predicted_weights() == {}

    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            SlidingWindowPredictor(window=0)


class TestPredictiveBMA:
    def test_reconfigures_periodically(self, small_fattree):
        algo = PredictiveBMA(small_fattree, MatchingConfig(b=2, alpha=4), period=10, window=50)
        for i in range(9):
            outcome = algo.serve(Request(0, 1))
            assert outcome.edges_added == ()
        outcome = algo.serve(Request(0, 1))  # 10th request triggers reconfiguration
        assert (0, 1) in algo.matching

    def test_degree_bound_maintained(self, small_fattree):
        trace = zipf_pair_trace(n_nodes=16, n_requests=1500, exponent=1.3,
                                repeat_probability=0.4, seed=9)
        algo = PredictiveBMA(small_fattree, MatchingConfig(b=2, alpha=4), period=100)
        for request in trace.requests():
            algo.serve(request)
            check_b_matching(algo.matching.edges, small_fattree.n_racks, 2)

    def test_adapts_to_shifting_hotspot(self, small_fattree):
        algo = PredictiveBMA(small_fattree, MatchingConfig(b=1, alpha=4), period=50, window=100)
        for _ in range(200):
            algo.serve(Request(0, 1))
        assert (0, 1) in algo.matching
        for _ in range(200):
            algo.serve(Request(2, 3))
        assert (2, 3) in algo.matching

    def test_rejects_bad_period(self, small_fattree):
        with pytest.raises(ConfigurationError):
            PredictiveBMA(small_fattree, MatchingConfig(b=2, alpha=4), period=0)

    def test_reset(self, small_fattree):
        algo = PredictiveBMA(small_fattree, MatchingConfig(b=2, alpha=4), period=5)
        for _ in range(7):
            algo.serve(Request(0, 1))
        algo.reset()
        assert algo.predictor.predicted_weights() == {}
        assert len(algo.matching) == 0
