"""Property-based tests for traffic generation (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic import (
    Trace,
    TrafficMatrix,
    compute_trace_statistics,
    database_trace,
    hadoop_trace,
    microsoft_trace,
    uniform_random_trace,
    web_service_trace,
    zipf_pair_trace,
)

node_counts = st.integers(min_value=4, max_value=24)
request_counts = st.integers(min_value=1, max_value=400)
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(n_nodes=node_counts, n_requests=request_counts, seed=seeds)
@settings(max_examples=40, deadline=None)
def test_generators_produce_valid_traces(n_nodes, n_requests, seed):
    for generator in (uniform_random_trace, zipf_pair_trace):
        trace = generator(n_nodes=n_nodes, n_requests=n_requests, seed=seed)
        assert len(trace) == n_requests
        assert trace.n_nodes == n_nodes
        assert np.all(trace.sources != trace.destinations)
        assert trace.sources.max(initial=0) < n_nodes
        assert trace.destinations.max(initial=0) < n_nodes


@given(n_nodes=st.integers(min_value=8, max_value=30),
       n_requests=st.integers(min_value=50, max_value=500), seed=seeds)
@settings(max_examples=20, deadline=None)
def test_paper_workloads_produce_valid_traces(n_nodes, n_requests, seed):
    for generator in (database_trace, web_service_trace, hadoop_trace, microsoft_trace):
        trace = generator(n_nodes=n_nodes, n_requests=n_requests, seed=seed)
        assert len(trace) == n_requests
        assert np.all(trace.sources != trace.destinations)
        assert int(max(trace.sources.max(), trace.destinations.max())) < n_nodes


@given(n_nodes=node_counts, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_traffic_matrix_probabilities_well_formed(n_nodes, seed):
    rng = np.random.default_rng(seed)
    raw = rng.random((n_nodes, n_nodes))
    matrix = TrafficMatrix(raw)
    m = matrix.matrix
    assert np.all(m >= 0)
    assert np.all(np.diag(m) == 0)
    assert m.sum() == np.float64(1.0) or abs(m.sum() - 1.0) < 1e-9
    total_pair_prob = sum(
        matrix.pair_probability(u, v) for u in range(n_nodes) for v in range(u + 1, n_nodes)
    )
    assert abs(total_pair_prob - 1.0) < 1e-6


@given(n_nodes=node_counts, n_requests=st.integers(min_value=20, max_value=300), seed=seeds)
@settings(max_examples=30, deadline=None)
def test_statistics_are_well_defined(n_nodes, n_requests, seed):
    trace = zipf_pair_trace(n_nodes=n_nodes, n_requests=n_requests, seed=seed)
    stats = compute_trace_statistics(trace)
    assert 0.0 <= stats.rereference_rate <= 1.0
    assert 0.0 < stats.top1pct_share <= 1.0
    assert stats.top1pct_share <= stats.top10pct_share + 1e-9
    assert 0.0 <= stats.normalized_entropy <= 1.0 + 1e-9
    assert stats.n_distinct_pairs <= n_nodes * (n_nodes - 1) // 2


@given(n_nodes=node_counts, n_requests=request_counts, seed=seeds)
@settings(max_examples=30, deadline=None)
def test_slicing_and_concatenation_preserve_requests(n_nodes, n_requests, seed):
    trace = uniform_random_trace(n_nodes=n_nodes, n_requests=n_requests, seed=seed)
    half = n_requests // 2
    left, right = trace[:half], trace[half:]
    rebuilt = left.concatenate(right)
    np.testing.assert_array_equal(rebuilt.sources, trace.sources)
    np.testing.assert_array_equal(rebuilt.destinations, trace.destinations)
