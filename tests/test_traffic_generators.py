"""Tests for the synthetic, Facebook-like and Microsoft-like workload generators."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import (
    compute_trace_statistics,
    database_trace,
    hadoop_trace,
    hotspot_trace,
    microsoft_trace,
    permutation_trace,
    projector_style_matrix,
    uniform_random_trace,
    web_service_trace,
    zipf_pair_trace,
)


class TestSyntheticGenerators:
    def test_uniform_basic(self):
        trace = uniform_random_trace(n_nodes=10, n_requests=500, seed=0)
        assert len(trace) == 500
        assert trace.n_nodes == 10
        assert trace.name == "uniform"

    def test_zipf_skewed(self):
        trace = zipf_pair_trace(n_nodes=12, n_requests=3000, exponent=1.5, seed=1)
        stats = compute_trace_statistics(trace)
        uniform_stats = compute_trace_statistics(
            uniform_random_trace(n_nodes=12, n_requests=3000, seed=1)
        )
        assert stats.top10pct_share > uniform_stats.top10pct_share

    def test_zipf_rejects_bad_exponent(self):
        with pytest.raises(TrafficError):
            zipf_pair_trace(n_nodes=8, n_requests=10, exponent=0.0)

    def test_hotspot_concentration(self):
        trace = hotspot_trace(n_nodes=10, n_requests=2000, n_hot_pairs=2,
                              hot_fraction=0.9, seed=2)
        counts = trace.pair_counts()
        top2 = sum(sorted(counts.values(), reverse=True)[:2])
        assert top2 / len(trace) > 0.8

    def test_hotspot_validation(self):
        with pytest.raises(TrafficError):
            hotspot_trace(n_nodes=5, n_requests=10, n_hot_pairs=100)
        with pytest.raises(TrafficError):
            hotspot_trace(n_nodes=5, n_requests=10, hot_fraction=1.5)

    def test_permutation_uses_disjoint_pairs(self):
        trace = permutation_trace(n_nodes=10, n_requests=500, seed=3)
        pairs = set(trace.pairs())
        nodes = [n for p in pairs for n in p]
        assert len(nodes) == len(set(nodes))  # pairwise disjoint partners

    def test_reproducibility(self):
        a = zipf_pair_trace(n_nodes=10, n_requests=200, seed=5)
        b = zipf_pair_trace(n_nodes=10, n_requests=200, seed=5)
        np.testing.assert_array_equal(a.sources, b.sources)
        np.testing.assert_array_equal(a.destinations, b.destinations)


class TestFacebookGenerators:
    def test_database_dimensions_and_name(self):
        trace = database_trace(n_nodes=20, n_requests=2000, seed=0)
        assert trace.name == "facebook-database"
        assert len(trace) == 2000
        assert trace.n_nodes == 20

    def test_database_has_temporal_structure(self):
        db = database_trace(n_nodes=20, n_requests=5000, seed=1)
        iid = uniform_random_trace(n_nodes=20, n_requests=5000, seed=1)
        db_stats = compute_trace_statistics(db)
        iid_stats = compute_trace_statistics(iid)
        assert db_stats.rereference_rate > iid_stats.rereference_rate + 0.2

    def test_web_less_skewed_than_database(self):
        db = database_trace(n_nodes=30, n_requests=6000, seed=2)
        web = web_service_trace(n_nodes=30, n_requests=6000, seed=2)
        db_stats = compute_trace_statistics(db)
        web_stats = compute_trace_statistics(web)
        assert web_stats.normalized_entropy > db_stats.normalized_entropy

    def test_hadoop_dimensions(self):
        trace = hadoop_trace(n_nodes=20, n_requests=3000, seed=3)
        assert len(trace) == 3000
        assert trace.name == "facebook-hadoop"

    def test_hadoop_has_job_locality(self):
        trace = hadoop_trace(n_nodes=30, n_requests=5000, seed=4,
                             job_racks=5, mean_job_length=500)
        stats = compute_trace_statistics(trace)
        assert stats.rereference_rate > 0.3

    def test_hadoop_validation(self):
        with pytest.raises(TrafficError):
            hadoop_trace(n_nodes=10, n_requests=100, job_racks=1)
        with pytest.raises(TrafficError):
            hadoop_trace(n_nodes=10, n_requests=100, background_fraction=1.5)

    def test_facebook_reproducible(self):
        a = database_trace(n_nodes=15, n_requests=1000, seed=9)
        b = database_trace(n_nodes=15, n_requests=1000, seed=9)
        np.testing.assert_array_equal(a.sources, b.sources)


class TestMicrosoftGenerator:
    def test_dimensions_and_name(self):
        trace = microsoft_trace(n_nodes=25, n_requests=3000, seed=0)
        assert trace.name == "microsoft"
        assert trace.n_nodes == 25
        assert len(trace) == 3000

    def test_spatially_skewed(self):
        matrix = projector_style_matrix(n_nodes=30, seed=1)
        assert matrix.skew_top_share(0.05) > 0.3
        assert matrix.entropy() < matrix.max_entropy()

    def test_no_temporal_structure_beyond_skew(self):
        """I.i.d. sampling: shuffling the trace should not change its statistics much."""
        trace = microsoft_trace(n_nodes=25, n_requests=8000, seed=2)
        stats = compute_trace_statistics(trace)
        rng = np.random.default_rng(0)
        order = rng.permutation(len(trace))
        shuffled = trace.sources[order], trace.destinations[order]
        from repro.traffic import Trace, TraceMetadata

        shuffled_trace = Trace(shuffled[0], shuffled[1], TraceMetadata("s", 25))
        shuffled_stats = compute_trace_statistics(shuffled_trace)
        assert abs(stats.rereference_rate - shuffled_stats.rereference_rate) < 0.05

    def test_active_fraction_validation(self):
        with pytest.raises(TrafficError):
            projector_style_matrix(n_nodes=10, active_fraction=0.0)

    def test_reproducible(self):
        a = microsoft_trace(n_nodes=20, n_requests=500, seed=7)
        b = microsoft_trace(n_nodes=20, n_requests=500, seed=7)
        np.testing.assert_array_equal(a.sources, b.sources)
