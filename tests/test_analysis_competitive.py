"""Tests for the empirical competitive-ratio harness and adversarial traces."""

import numpy as np
import pytest

from repro.analysis import (
    adversarial_paging_trace,
    empirical_competitive_ratio,
    round_robin_adversary_trace,
)
from repro.config import MatchingConfig
from repro.core import BMA, RBMA, ObliviousRouting
from repro.errors import TrafficError
from repro.topology import LeafSpineTopology, StarTopology
from repro.types import as_requests


class TestEmpiricalCompetitiveRatio:
    def test_ratio_at_least_one_for_online(self):
        topo = LeafSpineTopology(n_racks=4)
        config = MatchingConfig(b=1, alpha=3)
        requests = as_requests([(0, 1), (0, 2), (0, 1), (0, 2), (2, 3), (0, 1)] * 3)
        report = empirical_competitive_ratio(
            lambda: RBMA(topo, config, rng=1), requests, topo, config, trials=3
        )
        assert report.offline_cost > 0
        assert report.ratio >= 1.0 - 1e-9
        assert report.trials == 3

    def test_ratio_below_theoretical_bound_on_small_instances(self):
        topo = LeafSpineTopology(n_racks=4)
        config = MatchingConfig(b=2, alpha=2)
        rng = np.random.default_rng(0)
        pairs = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]
        requests = as_requests([pairs[i] for i in rng.integers(0, 6, size=40)])
        report = empirical_competitive_ratio(
            lambda: RBMA(topo, config, rng=2), requests, topo, config, trials=5
        )
        assert report.ratio <= report.theoretical_bound

    def test_deterministic_algorithm_single_trial(self):
        topo = LeafSpineTopology(n_racks=4)
        config = MatchingConfig(b=1, alpha=2)
        requests = as_requests([(0, 1)] * 10)
        report = empirical_competitive_ratio(
            lambda: BMA(topo, config), requests, topo, config, trials=1
        )
        assert report.online_cost >= report.offline_cost

    def test_oblivious_has_larger_ratio_on_repeated_pair(self):
        topo = LeafSpineTopology(n_racks=4)
        config = MatchingConfig(b=1, alpha=2)
        requests = as_requests([(0, 1)] * 30)
        oblivious = empirical_competitive_ratio(
            lambda: ObliviousRouting(topo, config), requests, topo, config, trials=1
        )
        rbma = empirical_competitive_ratio(
            lambda: RBMA(topo, config, rng=0), requests, topo, config, trials=1
        )
        assert oblivious.ratio > rbma.ratio

    def test_resource_augmented_offline(self):
        """With a < b the offline optimum is weaker, so the ratio can only drop."""
        topo = LeafSpineTopology(n_racks=6)
        config_full = MatchingConfig(b=2, alpha=2)
        config_aug = MatchingConfig(b=2, alpha=2, a=1)
        requests = as_requests([(0, 1), (0, 2), (0, 1), (0, 2)] * 5)
        full = empirical_competitive_ratio(
            lambda: RBMA(topo, config_full, rng=3), requests, topo, config_full, trials=3
        )
        augmented = empirical_competitive_ratio(
            lambda: RBMA(topo, config_aug, rng=3), requests, topo, config_aug, trials=3
        )
        assert augmented.offline_cost >= full.offline_cost
        assert augmented.ratio <= full.ratio + 1e-9


class TestAdversarialTraces:
    def test_random_adversary_shape(self):
        trace = adversarial_paging_trace(b=3, n_blocks=20, alpha=4, seed=0)
        assert trace.n_nodes == 5  # hub + b + 1 leaves
        assert len(trace) == 20 * 4
        assert set(trace.sources.tolist()) == {0}

    def test_round_robin_cycles_leaves(self):
        trace = round_robin_adversary_trace(b=2, n_blocks=6, block_length=1)
        assert trace.destinations.tolist() == [1, 2, 3, 1, 2, 3]

    def test_block_length_defaults_to_alpha(self):
        trace = adversarial_paging_trace(b=2, n_blocks=5, alpha=3.0, seed=1)
        assert len(trace) == 15

    def test_validation(self):
        with pytest.raises(TrafficError):
            adversarial_paging_trace(b=0, n_blocks=5)
        with pytest.raises(TrafficError):
            round_robin_adversary_trace(b=2, n_blocks=0)

    def test_adversary_hurts_deterministic_more_than_randomized(self):
        """On the star lower-bound instance, BMA (deterministic, Θ(b)) should
        not beat R-BMA by much; the randomized algorithm keeps up despite the
        adversarial pressure.  (A smoke test of the qualitative separation,
        not a tight bound.)"""
        b = 3
        topo = StarTopology(n_racks=b + 1, hub_is_rack=True)
        config = MatchingConfig(b=b, alpha=4)
        trace = round_robin_adversary_trace(b=b, n_blocks=120, alpha=4)
        rbma_costs = []
        for seed in range(3):
            algo = RBMA(topo, config, rng=seed)
            algo.serve_all(list(trace.requests()))
            rbma_costs.append(algo.total_cost)
        bma = BMA(topo, config)
        bma.serve_all(list(trace.requests()))
        assert np.mean(rbma_costs) <= bma.total_cost * 1.5
