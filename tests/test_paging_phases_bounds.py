"""Tests for phase partitioning and the theoretical bound formulas."""

import math

import numpy as np
import pytest

from repro.errors import PagingError
from repro.paging import (
    harmonic_number,
    marking_competitive_ratio,
    offline_paging_cost,
    partition_into_phases,
    randomized_paging_lower_bound,
    resource_augmented_ratio,
)
from repro.paging.bounds import gamma_factor, rbma_lower_bound, rbma_upper_bound


class TestPhasePartition:
    def test_simple_partition(self):
        seq = ["a", "b", "a", "c", "d", "c", "e"]
        part = partition_into_phases(seq, k=2)
        # Phase 1: a b a ; phase 2: c d c ; phase 3: e
        assert part.n_phases == 3
        assert part.boundaries == [0, 3, 6]
        assert part.distinct_per_phase == [2, 2, 1]

    def test_new_pages_per_phase(self):
        seq = ["a", "b", "c", "d", "a", "b"]
        part = partition_into_phases(seq, k=2)
        assert part.new_pages_per_phase == [2, 2]

    def test_opt_lower_bound_respected_by_belady(self):
        rng = np.random.default_rng(1)
        seq = rng.integers(0, 10, size=600).tolist()
        for k in (2, 4, 6):
            part = partition_into_phases(seq, k)
            assert offline_paging_cost(seq, k) >= part.opt_lower_bound()

    def test_single_phase_when_few_pages(self):
        part = partition_into_phases(["a", "b"] * 10, k=3)
        assert part.n_phases == 1
        assert part.opt_lower_bound() == 0

    def test_empty_sequence(self):
        part = partition_into_phases([], k=2)
        assert part.n_phases == 0
        assert part.opt_lower_bound() == 0

    def test_rejects_bad_k(self):
        with pytest.raises(PagingError):
            partition_into_phases(["a"], k=0)


class TestBounds:
    def test_harmonic_number(self):
        assert harmonic_number(1) == 1.0
        assert harmonic_number(4) == pytest.approx(1 + 0.5 + 1 / 3 + 0.25)
        assert harmonic_number(0) == 0.0

    def test_marking_ratio(self):
        assert marking_competitive_ratio(1) == pytest.approx(2.0)
        assert marking_competitive_ratio(10) == pytest.approx(2 * harmonic_number(10))

    def test_resource_augmented_shrinks_with_slack(self):
        # More augmentation (smaller a) gives a smaller ratio.
        assert resource_augmented_ratio(16, 16) > resource_augmented_ratio(16, 8)
        assert resource_augmented_ratio(16, 8) > resource_augmented_ratio(16, 1)

    def test_lower_bound_below_upper_bound(self):
        for b in (2, 4, 8, 16):
            for a in (1, b // 2 or 1, b):
                assert randomized_paging_lower_bound(b, a) <= resource_augmented_ratio(b, a)

    def test_lower_bound_equals_harmonic_when_a_equals_b(self):
        assert randomized_paging_lower_bound(6) == pytest.approx(harmonic_number(6))

    def test_gamma_factor(self):
        assert gamma_factor(4, 40) == pytest.approx(1.1)

    def test_rbma_bounds_ordering(self):
        for b in (3, 6, 18):
            upper = rbma_upper_bound(b, b, l_max=4, alpha=40)
            lower = rbma_lower_bound(b)
            assert lower < upper

    def test_rbma_upper_bound_grows_logarithmically(self):
        u6 = rbma_upper_bound(6, 6, 4, 40)
        u18 = rbma_upper_bound(18, 18, 4, 40)
        # Tripling b should grow the bound far less than a factor of 3.
        assert u18 / u6 < 1.8

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            harmonic_number(-1)
        with pytest.raises(ValueError):
            marking_competitive_ratio(0)
        with pytest.raises(ValueError):
            resource_augmented_ratio(4, 5)
        with pytest.raises(ValueError):
            gamma_factor(0, 1)
