"""The import-optional numba matching backend: gate, fallback, and provenance.

The backend contract (see :mod:`repro.matching.numba_bmatching`):

* ``"numba"`` is always a *valid* backend name — configs and specs naming it
  validate on every host;
* whether it resolves to the compiled kernel is decided at construction
  time by :func:`repro.matching.numba_backend_active`:
  ``REPRO_NO_NUMBA`` masks it unconditionally (the nonumba CI tier), numba
  availability enables it, and ``REPRO_NUMBA_PUREPY`` enables the
  uncompiled-but-identical test mode on numba-less hosts;
* when inactive, :func:`make_matching` falls back to the pure-Python fast
  kernel with exactly one warning per process, and a run requesting the
  numba backend is bit-identical to a fast-backend run (trivially — it *is*
  one), with the requested backend and the effective kernel both recorded
  in ``RunResult.extra``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

import repro.matching as matching_mod
from repro.config import MatchingConfig, SimulationConfig
from repro.core import RBMA, BMA
from repro.matching import (
    FastBMatching,
    MATCHING_BACKENDS,
    NUMBA_AVAILABLE,
    NumbaBMatching,
    make_matching,
    numba_backend_active,
)
from repro.matching.numba_bmatching import warmup_kernels
from repro.simulation import run_simulation
from repro.topology import LeafSpineTopology
from repro.traffic import zipf_pair_trace


@pytest.fixture
def fresh_warning_latch(monkeypatch):
    """Reset the once-per-process fallback-warning latch for one test."""
    monkeypatch.setattr(matching_mod, "_NUMBA_FALLBACK_WARNED", False)


# --------------------------------------------------------------------------- #
# Gate behaviour
# --------------------------------------------------------------------------- #


def test_numba_is_always_a_registered_backend():
    assert MATCHING_BACKENDS["numba"] is NumbaBMatching
    assert SimulationConfig(matching_backend="numba").matching_backend == "numba"


def test_repro_no_numba_masks_the_backend(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMBA", "1")
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")  # must lose to the mask
    assert not numba_backend_active()


def test_purepy_flag_activates_the_backend_without_numba(monkeypatch):
    monkeypatch.delenv("REPRO_NO_NUMBA", raising=False)
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
    assert numba_backend_active()
    built = make_matching(6, 2, "numba")
    assert type(built) is NumbaBMatching
    assert built.backend_name == "numba"


def test_zero_valued_flags_count_as_unset(monkeypatch):
    monkeypatch.setenv("REPRO_NO_NUMBA", "0")
    monkeypatch.delenv("REPRO_NUMBA_PUREPY", raising=False)
    assert numba_backend_active() == NUMBA_AVAILABLE


def test_fallback_builds_fast_kernel_and_warns_exactly_once(
    monkeypatch, fresh_warning_latch
):
    monkeypatch.setenv("REPRO_NO_NUMBA", "1")
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        first = make_matching(6, 2, "numba")
        second = make_matching(6, 2, "numba")
    assert type(first) is FastBMatching and type(second) is FastBMatching
    fallback_warnings = [w for w in caught if "falling back" in str(w.message)]
    assert len(fallback_warnings) == 1
    assert issubclass(fallback_warnings[0].category, RuntimeWarning)


def test_compiled_kernels_really_compile():
    """Where numba is installed, the scan kernels must be real dispatchers."""
    if not NUMBA_AVAILABLE:
        pytest.skip("numba is not installed in this environment")
    from repro.matching import numba_bmatching as nb

    assert warmup_kernels()
    for kernel in (nb.rbma_scan, nb.bma_scan, nb.bma_select_victim,
                   nb.bma_reset_counters, nb.lut_diff):
        assert kernel.signatures, f"{kernel} never compiled"


# --------------------------------------------------------------------------- #
# Kernel invariants (run uncompiled everywhere; compiled where numba exists)
# --------------------------------------------------------------------------- #


def test_member_lut_tracks_edges_through_random_ops():
    rng = np.random.default_rng(7)
    kernel = NumbaBMatching(8, 2)
    for _ in range(300):
        u, v = int(rng.integers(8)), int(rng.integers(8))
        if u == v:
            continue
        if (u, v) in kernel:
            if rng.random() < 0.5:
                kernel.mark_for_removal(u, v)
            else:
                kernel.remove(u, v)
        elif kernel.has_capacity(u, v):
            kernel.add(u, v)
        lut_keys = sorted(int(k) for k in np.nonzero(kernel.member_lut)[0])
        assert lut_keys == sorted(kernel.edge_keys)


def test_warmup_kernels_is_safe_without_numba():
    assert warmup_kernels() == NUMBA_AVAILABLE


def test_lut_diff_matches_sorted_set_diff():
    from repro.matching.numba_bmatching import lut_diff

    rng = np.random.default_rng(3)
    current = (rng.random(64) < 0.3).astype(np.uint8)
    target = (rng.random(64) < 0.3).astype(np.uint8)
    removed, added = lut_diff(current, target)
    cur_keys = {int(k) for k in np.nonzero(current)[0]}
    tgt_keys = {int(k) for k in np.nonzero(target)[0]}
    assert list(removed) == sorted(cur_keys - tgt_keys)
    assert list(added) == sorted(tgt_keys - cur_keys)


# --------------------------------------------------------------------------- #
# End-to-end: fallback and provenance
# --------------------------------------------------------------------------- #


def _run(algorithm_cls, backend: str, seed: int = 11):
    topo = LeafSpineTopology(n_racks=8)
    trace = zipf_pair_trace(n_nodes=8, n_requests=300, seed=3)
    algo = algorithm_cls(topo, MatchingConfig(b=2, alpha=4.0), rng=seed)
    result = run_simulation(
        algo, trace, SimulationConfig(checkpoints=5, matching_backend=backend)
    )
    return algo, result


@pytest.mark.parametrize("algorithm_cls", [RBMA, BMA])
def test_fallback_run_is_bit_identical_to_fast(
    monkeypatch, fresh_warning_latch, algorithm_cls
):
    """With numba masked, a numba-backend run IS a fast-backend run."""
    monkeypatch.setenv("REPRO_NO_NUMBA", "1")
    algo_fast, res_fast = _run(algorithm_cls, "fast")
    algo_numba, res_numba = _run(algorithm_cls, "numba")
    assert type(algo_numba.matching) is FastBMatching
    assert res_numba.total_routing_cost == res_fast.total_routing_cost
    assert res_numba.total_reconfiguration_cost == res_fast.total_reconfiguration_cost
    assert np.array_equal(res_numba.series.routing_cost, res_fast.series.routing_cost)
    # Provenance: the result records both the request and the reality.
    assert res_numba.extra["matching_backend"] == "numba"
    assert res_numba.extra["matching_kernel"] == "fast"
    assert res_fast.extra["matching_kernel"] == "fast"


def test_hybrid_experts_stay_on_backend_after_reset(monkeypatch):
    """Regression: reset() used to drop the experts back to the fast kernel.

    The engine's rebind is a no-op after reset (the combiner still reports
    backend 'numba'), so ``_make_experts`` must rebind the fresh experts
    itself — otherwise the compiled drivers silently never run while the
    provenance still claims the numba kernel.
    """
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
    if not numba_backend_active():
        pytest.skip("nonumba tier: the numba backend is masked by design")
    from repro.core import HybridBMA

    topo = LeafSpineTopology(n_racks=8)
    algo = HybridBMA(topo, MatchingConfig(b=2, alpha=4.0), rng=1)
    algo.rebind_matching_backend("numba")
    assert algo._robust.matching.backend_name == "numba"
    algo.reset()
    assert algo.matching.backend_name == "numba"
    assert algo._robust.matching.backend_name == "numba"
    assert algo._predictive.matching.backend_name == "numba"


def test_rbma_interleaved_serve_and_serve_batch_on_numba(monkeypatch):
    """serve() and serve_batch() share the dense counter store in numba mode."""
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
    if not numba_backend_active():
        pytest.skip("nonumba tier: the numba backend is masked by design")
    topo = LeafSpineTopology(n_racks=8)
    trace = zipf_pair_trace(n_nodes=8, n_requests=200, seed=4)

    mixed = RBMA(topo, MatchingConfig(b=2, alpha=4.0), rng=9)
    mixed.rebind_matching_backend("numba")
    for request in trace[0:30].requests():
        mixed.serve(request)
    mixed.serve_batch(trace[30:150])
    for request in trace[150:200].requests():
        mixed.serve(request)

    sequential = RBMA(topo, MatchingConfig(b=2, alpha=4.0), rng=9)
    sequential.rebind_matching_backend("numba")
    for request in trace.requests():
        sequential.serve(request)

    assert mixed.total_routing_cost == sequential.total_routing_cost
    assert mixed.total_reconfiguration_cost == sequential.total_reconfiguration_cost
    assert sorted(mixed.matching.edges) == sorted(sequential.matching.edges)
    pair = trace[199].src, trace[199].dst
    pair = (min(pair), max(pair))
    assert mixed.pending_count(pair) == sequential.pending_count(pair)

    # reset() must zero the dense store too: a second identical run matches.
    mixed.reset()
    for request in trace.requests():
        mixed.serve(request)
    assert mixed.requests_served == sequential.requests_served


@pytest.mark.parametrize("algorithm_cls", [RBMA, BMA])
def test_active_backend_records_numba_kernel_and_matches_fast(
    monkeypatch, algorithm_cls
):
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
    if not numba_backend_active():
        pytest.skip("nonumba tier: the numba backend is masked by design")
    algo_fast, res_fast = _run(algorithm_cls, "fast")
    algo_numba, res_numba = _run(algorithm_cls, "numba")
    assert type(algo_numba.matching) is NumbaBMatching
    assert res_numba.extra["matching_kernel"] == "numba"
    assert res_numba.total_routing_cost == res_fast.total_routing_cost
    assert res_numba.total_reconfiguration_cost == res_fast.total_reconfiguration_cost
    assert np.array_equal(res_numba.series.routing_cost, res_fast.series.routing_cost)
    assert sorted(algo_numba.matching.edges) == sorted(algo_fast.matching.edges)
