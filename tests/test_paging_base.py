"""Tests for the paging interface shared by all policies."""

import pytest

from repro.errors import PagingError
from repro.paging import FIFOPaging, LRUPaging, RandomizedMarking
from repro.paging.base import PagingResult


class TestPagingResult:
    def test_miss_property(self):
        assert PagingResult(page="a", hit=False).miss is True
        assert PagingResult(page="a", hit=True).miss is False


class TestRequestSemantics:
    def test_first_request_is_miss_and_fetches(self):
        algo = LRUPaging(2)
        result = algo.request("x")
        assert result.miss
        assert "x" in algo
        assert result.evicted == ()

    def test_hit_does_not_evict(self):
        algo = LRUPaging(2)
        algo.request("x")
        result = algo.request("x")
        assert result.hit
        assert result.evicted == ()

    def test_eviction_reported(self):
        algo = FIFOPaging(1)
        algo.request("x")
        result = algo.request("y")
        assert result.miss
        assert result.evicted == ("x",)
        assert "x" not in algo and "y" in algo

    def test_cache_never_exceeds_capacity(self):
        algo = RandomizedMarking(3, rng=0)
        for i in range(50):
            algo.request(i % 7)
            assert len(algo) <= 3

    def test_capacity_validation(self):
        with pytest.raises(PagingError):
            LRUPaging(0)

    def test_stats_counting(self):
        algo = LRUPaging(2)
        algo.request("a")
        algo.request("a")
        algo.request("b")
        algo.request("c")
        assert algo.stats.requests == 4
        assert algo.stats.hits == 1
        assert algo.stats.misses == 3
        assert algo.stats.evictions == 1
        assert algo.stats.hit_ratio() == pytest.approx(0.25)

    def test_serve_sequence_returns_misses(self):
        algo = LRUPaging(2)
        misses = algo.serve_sequence(["a", "b", "a", "c", "a"])
        assert misses == 3

    def test_reset_clears_everything(self):
        algo = LRUPaging(2)
        algo.serve_sequence(["a", "b", "c"])
        algo.reset()
        assert len(algo) == 0
        assert algo.stats.requests == 0
        # After reset the policy state is clean: no stale eviction order.
        algo.request("x")
        algo.request("y")
        result = algo.request("z")
        assert result.evicted == ("x",)

    def test_drop_removes_page(self):
        algo = LRUPaging(3)
        algo.request("a")
        assert algo.drop("a") is True
        assert "a" not in algo
        assert algo.drop("a") is False

    def test_hit_ratio_empty(self):
        assert LRUPaging(1).stats.hit_ratio() == 0.0
