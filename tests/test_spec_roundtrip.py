"""Spec round-trip contract: serialisation must not change results.

For every registered algorithm, topology and workload family, a spec rebuilt
from ``spec.to_dict()`` (via JSON) must produce a bit-identical
:class:`~repro.simulation.results.RunResult` under a fixed seed.
"""

import json

import numpy as np
import pytest

from repro.core.registry import ALGORITHMS
from repro.experiments import ExperimentSpec
from repro.topology.registry import TOPOLOGIES
from repro.traffic.registry import WORKLOADS

SEED = 424242

#: Constructor parameters for topologies that are not sized by ``n_racks``
#: (torus, hypercube) or that need a pinned seed to be reproducible (expander
#: builds a random regular graph).
TOPOLOGY_PARAMS = {
    "torus": {"rows": 2, "cols": 4},
    "hypercube": {"dimension": 3},
    "expander": {"seed": 7},
}

#: Workload generator parameters keeping every family tiny but non-trivial.
WORKLOAD_PARAMS = {
    "hotspot": {"n_nodes": 10, "n_requests": 150, "n_hot_pairs": 3},
}
DEFAULT_WORKLOAD_PARAMS = {"n_nodes": 10, "n_requests": 150}


def _canonical_names(registry):
    return sorted({registry.canonical(name) for name in registry.names()})


def _assert_identical(a, b):
    assert a.total_routing_cost == b.total_routing_cost
    assert a.total_reconfiguration_cost == b.total_reconfiguration_cost
    assert a.matched_fraction == b.matched_fraction
    np.testing.assert_array_equal(a.series.requests, b.series.requests)
    np.testing.assert_array_equal(a.series.routing_cost, b.series.routing_cost)
    np.testing.assert_array_equal(a.series.reconfiguration_cost,
                                  b.series.reconfiguration_cost)
    np.testing.assert_array_equal(a.series.matched_fraction, b.series.matched_fraction)


def _roundtrip_and_run(spec: ExperimentSpec):
    rebuilt = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert rebuilt == spec
    _assert_identical(spec.execute(), rebuilt.execute())


@pytest.mark.parametrize("algorithm", _canonical_names(ALGORITHMS))
def test_every_algorithm_roundtrips(algorithm):
    spec = ExperimentSpec(
        algorithm={"name": algorithm, "b": 2, "alpha": 4},
        traffic={"name": "zipf",
                 "params": {"n_nodes": 10, "n_requests": 150, "exponent": 1.3}},
        simulation={"checkpoints": 4},
        seed=SEED,
    )
    _roundtrip_and_run(spec)


@pytest.mark.parametrize("topology", _canonical_names(TOPOLOGIES))
def test_every_topology_roundtrips(topology):
    spec = ExperimentSpec(
        algorithm={"name": "rbma", "b": 2, "alpha": 4},
        traffic={"name": "zipf",
                 "params": {"n_nodes": 8, "n_requests": 120, "exponent": 1.3}},
        topology={"name": topology, "params": dict(TOPOLOGY_PARAMS.get(topology, {}))},
        simulation={"checkpoints": 4},
        seed=SEED,
    )
    _roundtrip_and_run(spec)


@pytest.mark.parametrize("workload", _canonical_names(WORKLOADS))
def test_every_workload_roundtrips(workload):
    params = dict(WORKLOAD_PARAMS.get(workload, DEFAULT_WORKLOAD_PARAMS))
    spec = ExperimentSpec(
        algorithm={"name": "rbma", "b": 2, "alpha": 4},
        traffic={"name": workload, "params": params},
        simulation={"checkpoints": 4},
        seed=SEED,
    )
    _roundtrip_and_run(spec)


@pytest.mark.smoke
def test_roundtrip_through_cli_payload_shape(tmp_path):
    """The exact flow behind ``repro run``: file → spec → result → provenance."""
    spec = ExperimentSpec(
        algorithm={"name": "rbma", "b": 2, "alpha": 4},
        traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 100}},
        seed=SEED,
    )
    path = tmp_path / "spec.json"
    spec.save_json(path)
    loaded = ExperimentSpec.load_json(path)
    result = loaded.execute()
    _assert_identical(result, spec.execute())
    assert ExperimentSpec.from_dict(result.spec) == spec
