"""Timing sanity check: the fast kernel must actually be fast.

One small reference-vs-fast A/B on a BMA replay (the kernel-heaviest
algorithm), marked ``perf_smoke`` so it can be selected on its own
(``pytest -m perf_smoke``) while still running in the tier-1 suite.  The
assertion threshold is deliberately loose — the fast path wins this workload
by ~3x on an idle machine — so scheduler noise cannot flake CI, while a
regression that erases the speedup (e.g. accidentally disabling the batched
engine path) still fails.

``BENCH_kernel.json`` (written by ``benchmarks/bench_kernel.py``) records the
full figure-panel numbers; this test is only the canary.
"""

import time

import pytest

from repro.config import SimulationConfig
from repro.experiments import ExperimentSpec

pytestmark = pytest.mark.perf_smoke


def _timed_run(backend: str) -> tuple[float, tuple]:
    spec = ExperimentSpec(
        algorithm={"name": "bma", "b": 4, "alpha": 8.0},
        traffic={"name": "zipf", "params": {"n_nodes": 32, "n_requests": 8000}},
        simulation={"checkpoints": 5, "matching_backend": backend},
        seed=5,
    )
    best = float("inf")
    costs = None
    for _attempt in range(2):  # best-of-2 suppresses one-off scheduler blips
        started = time.perf_counter()
        result = spec.execute()
        best = min(best, time.perf_counter() - started)
        costs = (result.total_routing_cost, result.total_reconfiguration_cost,
                 result.matched_fraction)
    return best, costs


def test_fast_backend_outpaces_reference():
    reference_seconds, reference_costs = _timed_run("reference")
    fast_seconds, fast_costs = _timed_run("fast")
    assert fast_costs == reference_costs  # speed must not buy different results
    assert fast_seconds < reference_seconds * 0.8, (
        f"fast kernel took {fast_seconds:.3f}s vs reference "
        f"{reference_seconds:.3f}s — expected a clear win; the batched replay "
        "path or the fast kernel has regressed"
    )
