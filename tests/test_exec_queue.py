"""Pull-based work queue: lease semantics, crash recovery, queue backend e2e.

The queue's whole contract is failure semantics (see :mod:`repro.exec.queue`):

* **Duplicate-claim protection** — a task file can be claimed by exactly one
  worker (``os.replace`` has one winner), so two workers polling the same
  directory never execute the same attempt twice.
* **Lease expiry** — a killed worker's claim requeues (attempt counter
  bumped) once its lease runs out, and the re-execution is bit-identical
  to what the dead worker would have produced.
* **Bounded attempts** — after ``max_attempts`` failures the task becomes a
  terminal failure carrying the original worker error (with the failing
  spec's JSON intact), surfaced as :class:`WorkerExecutionError`.

The in-process tests drive :class:`WorkQueue`/:func:`run_worker` directly
and always run.  The ``sched``-marked end-to-end test spawns real
``repro worker`` subprocesses (two workers, one SIGKILLed mid-task) and is
auto-skipped on single-CPU hosts unless ``REPRO_FORCE_SCHED`` is set.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigurationError, WorkerExecutionError
from repro.exec import WorkQueue, build_execution_plan, execute_plan, run_worker
from repro.exec.queue import _collect_outcomes
from repro.exec.scheduler import _ResultsPlane
from repro.experiments import ExperimentSpec

SEED = 2023


def _spec(name="rbma", seed=SEED, n_requests=200, n_nodes=10):
    return ExperimentSpec(
        algorithm={"name": name, "b": 3, "alpha": 4.0},
        traffic={"name": "zipf",
                 "params": {"n_nodes": n_nodes, "n_requests": n_requests}},
        simulation={"checkpoints": 4},
        seed=seed,
    )


def _failing_spec():
    return ExperimentSpec(
        algorithm={"name": "rbma", "b": 3, "alpha": 4.0},
        traffic={"name": "zipf", "params": {"n_nodes": 10, "n_requests": 40}},
        simulation={"checkpoint_positions": [999]},
        seed=5,
    )


def _enqueue_plan(queue, specs):
    plan = build_execution_plan(specs, store=False)
    for task in plan.tasks:
        queue.enqueue(task.to_payload())
    return plan


def _assert_series_identical(a, b):
    assert np.array_equal(a.series.requests, b.series.requests)
    assert np.array_equal(a.series.routing_cost, b.series.routing_cost)
    assert np.array_equal(a.series.reconfiguration_cost, b.series.reconfiguration_cost)
    assert np.array_equal(a.series.matched_fraction, b.series.matched_fraction)
    assert a.total_routing_cost == b.total_routing_cost


def _backdate_lease(queue, name):
    """Rewrite a claim's lease as long expired (simulating a dead worker)."""
    lease_path = queue.claimed_dir / f"{name}.lease"
    lease = json.loads(lease_path.read_text(encoding="utf-8"))
    lease["expires_at"] = time.time() - 60.0
    lease_path.write_text(json.dumps(lease), encoding="utf-8")


# --------------------------------------------------------------------------- #
# In-process failure semantics
# --------------------------------------------------------------------------- #


class TestLeaseProtocol:
    def test_opening_a_non_queue_directory_is_an_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not a work queue"):
            WorkQueue.open(tmp_path)

    def test_claim_has_exactly_one_winner(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        _enqueue_plan(queue, [_spec()])
        first = queue.claim("worker-a")
        assert first is not None
        name, payload = first
        assert queue.parse_name(name) == (payload["id"], 1)
        # The task file moved out of tasks/: a second claimant finds nothing.
        assert queue.claim("worker-b") is None
        assert (queue.claimed_dir / name).exists()
        assert (queue.claimed_dir / f"{name}.lease").exists()

    def test_two_tasks_two_claimants_disjoint_work(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        _enqueue_plan(queue, [_spec(seed=1), _spec(seed=2)])
        a = queue.claim("worker-a")
        b = queue.claim("worker-b")
        assert a is not None and b is not None
        assert a[0] != b[0]
        assert queue.claim("worker-c") is None

    def test_live_lease_is_not_reaped(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", lease_seconds=60.0)
        _enqueue_plan(queue, [_spec()])
        queue.claim("worker-a")
        assert queue.requeue_expired() == 0
        assert queue.counts()["claimed"] == 1

    def test_dead_pid_reaps_without_waiting_for_the_clock(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", lease_seconds=3600.0)
        _enqueue_plan(queue, [_spec()])
        name, _ = queue.claim("worker-a")
        lease = json.loads(
            (queue.claimed_dir / f"{name}.lease").read_text(encoding="utf-8")
        )
        assert queue.requeue_expired(dead_pids={lease["pid"]}) == 1
        # Requeued with the attempt counter bumped.
        task_id, attempt = queue.parse_name(name)
        assert (queue.tasks_dir / queue.task_file_name(task_id, attempt + 1)).exists()


class TestCrashRecovery:
    def test_expired_lease_requeues_and_reexecution_is_bit_identical(self, tmp_path):
        spec = _spec()
        queue = WorkQueue.create(tmp_path / "q")
        plan = _enqueue_plan(queue, [spec])
        # A worker claims the task, then dies without completing it.
        name, _payload = queue.claim("ghost")
        _backdate_lease(queue, name)
        assert queue.requeue_expired() == 1
        assert queue.counts() == {"ready": 1, "claimed": 0, "results": 0, "failed": 0}
        # A healthy worker drains the requeued attempt in-process.
        stats = run_worker(queue.root, worker_id="healthy")
        assert stats["completed"] == 1
        [result_file] = sorted(queue.results_dir.glob("*.json"))
        payload = json.loads(result_file.read_text(encoding="utf-8"))
        assert payload["attempt"] == 2
        assert payload["worker"] == "healthy"
        # The requeued execution matches serial execution exactly.
        plane = _ResultsPlane(plan, "queue")
        _collect_outcomes(queue, plane, set())
        [result] = plane.assemble()
        assert result.extra["scheduler_backend"] == "queue"
        assert result.extra["attempts"] == 2
        [serial] = execute_plan(build_execution_plan([spec], store=False))
        _assert_series_identical(result, serial)

    def test_exhausted_attempts_surface_the_original_worker_error(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", max_attempts=2)
        plan = _enqueue_plan(queue, [_failing_spec()])
        stats = run_worker(queue.root, worker_id="doomed")
        assert stats["completed"] == 0
        assert stats["failed_attempts"] == 2
        assert queue.counts() == {"ready": 0, "claimed": 0, "results": 0, "failed": 1}
        [failed_file] = sorted(queue.failed_dir.glob("*.json"))
        failure = json.loads(failed_file.read_text(encoding="utf-8"))
        assert failure["attempts"] == 2
        assert failure["error_type"] == "WorkerExecutionError"
        assert "failing spec" in failure["error"]
        assert "checkpoint_positions reach 999" in failure["error"]
        # The task payload (with the failing spec's JSON) survives intact.
        assert failure["task"]["specs"][0]["seed"] == 5
        # Folding the terminal failure into a raise-mode results plane
        # surfaces the original WorkerExecutionError with full context.
        plane = _ResultsPlane(plan, "queue")
        with pytest.raises(WorkerExecutionError, match="checkpoint_positions reach 999"):
            _collect_outcomes(queue, plane, set())

    def test_expiry_of_the_last_attempt_is_a_terminal_failure(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q", max_attempts=1)
        _enqueue_plan(queue, [_spec()])
        name, _ = queue.claim("ghost")
        _backdate_lease(queue, name)
        assert queue.requeue_expired() == 1
        [failed_file] = sorted(queue.failed_dir.glob("*.json"))
        failure = json.loads(failed_file.read_text(encoding="utf-8"))
        assert failure["error_type"] == "WorkerExecutionError"
        assert "lease expired" in failure["error"]
        assert "failing spec" in failure["error"]
        assert failure["task"]["specs"][0]["seed"] == SEED

    def test_late_result_after_expiry_is_cleaned_up_not_requeued(self, tmp_path):
        queue = WorkQueue.create(tmp_path / "q")
        _enqueue_plan(queue, [_spec()])
        name, _ = queue.claim("slow")
        task_id, _attempt = queue.parse_name(name)
        # The slow worker's result lands just as its lease expires.
        (queue.results_dir / f"{task_id}.json").write_text(
            json.dumps({"id": task_id, "attempt": 1, "outcomes": []}),
            encoding="utf-8",
        )
        _backdate_lease(queue, name)
        assert queue.requeue_expired() == 1
        assert queue.counts() == {"ready": 0, "claimed": 0, "results": 1, "failed": 0}


class TestWorkerCLI:
    def test_repro_worker_drains_a_queue(self, tmp_path, capsys):
        queue = WorkQueue.create(tmp_path / "q")
        plan = _enqueue_plan(queue, [_spec("rbma"), _spec("bma")])
        assert main(["worker", str(queue.root), "--worker-id", "cli-test"]) == 0
        out = capsys.readouterr().out
        assert "cli-test" in out and "1 task(s) completed" in out
        plane = _ResultsPlane(plan, "queue")
        _collect_outcomes(queue, plane, set())
        results = plane.assemble()
        assert [r.algorithm for r in results] == ["rbma", "bma"]
        stats = json.loads(
            (queue.workers_dir / "cli-test.json").read_text(encoding="utf-8")
        )
        assert stats["completed"] == 1  # both specs share one lockstep task
        assert "solver_cache" in stats


# --------------------------------------------------------------------------- #
# End-to-end queue backend with real worker subprocesses
# --------------------------------------------------------------------------- #


@pytest.mark.sched
def test_queue_backend_survives_a_killed_worker_bit_identically(tmp_path):
    """The acceptance scenario: a figure-grid sweep on the ``queue`` backend
    with two local workers, one SIGKILLed mid-task, must requeue the lease
    and still produce results bit-identical to ``serial`` — with zero
    redundant SO-BMA solves in any worker (the plan pre-solved the demand).
    """
    algorithms = ("rbma", "bma", "so-bma", "oblivious")
    specs = [
        _spec(name, seed=seed, n_requests=4000, n_nodes=16)
        for seed in (11, 12)
        for name in algorithms
    ]
    serial = execute_plan(build_execution_plan(specs, store=False), backend="serial")

    queue_dir = tmp_path / "queue"
    holder = {}

    def _run():
        holder["results"] = execute_plan(
            build_execution_plan(specs, store=False),
            backend="queue",
            n_workers=2,
            queue_dir=str(queue_dir),
            lease_seconds=2.0,
            poll_interval=0.05,
            timeout=300.0,
        )

    thread = threading.Thread(target=_run)
    thread.start()
    # Kill the first worker we observe holding a lease, mid-task.
    killed = None
    deadline = time.time() + 60.0
    try:
        while killed is None and time.time() < deadline and thread.is_alive():
            for lease_path in sorted(queue_dir.glob("claimed/*.lease")):
                try:
                    lease = json.loads(lease_path.read_text(encoding="utf-8"))
                    os.kill(int(lease["pid"]), signal.SIGKILL)
                except (OSError, ValueError, KeyError, json.JSONDecodeError):
                    continue
                killed = lease
                break
            time.sleep(0.01)
    finally:
        thread.join(timeout=300.0)
    assert not thread.is_alive()
    assert killed is not None, "never observed a worker holding a lease"

    results = holder["results"]
    assert len(results) == len(specs)
    for seq, q in zip(serial, results):
        assert q.extra["scheduler_backend"] == "queue"
        _assert_series_identical(seq, q)
    # The killed worker's task requeued and re-ran: some result records a
    # second (or later) attempt.
    assert max(r.extra["attempts"] for r in results) >= 2
    # Zero redundant SO-BMA solves: every worker served its so-bma fits from
    # the plan's pre-solved rounds (imports seed the memo without a miss).
    snapshots = [
        json.loads(p.read_text(encoding="utf-8")).get("solver_cache", {})
        for p in sorted(queue_dir.glob("results/*.json"))
    ]
    assert snapshots, "no worker result payloads recorded"
    assert all(snap.get("misses", 0) == 0 for snap in snapshots)
