"""Tests for the simulation engine and the Timer."""

import time

import numpy as np
import pytest

from repro.config import MatchingConfig, SimulationConfig
from repro.core import BMA, RBMA, ObliviousRouting, StaticOfflineBMA
from repro.errors import SimulationError
from repro.simulation import Timer, run_simulation
from repro.traffic import uniform_random_trace, zipf_pair_trace


class TestCheckpointPositions:
    """Contract (see SimulationConfig): exactly min(checkpoints, n_requests)
    strictly increasing positions ending at n_requests — rounding collisions
    on short traces must be resolved, not silently dropped."""

    def test_exhaustive_contract(self):
        from repro.simulation.engine import _checkpoint_positions

        for n_requests in range(1, 120):
            for n_checkpoints in (1, 2, 3, 5, 7, 10, 19, 20, 50, 119, 200):
                positions = _checkpoint_positions(n_requests, n_checkpoints)
                expected = min(n_checkpoints, n_requests)
                assert len(positions) == expected, (n_requests, n_checkpoints)
                assert positions[-1] == n_requests, (n_requests, n_checkpoints)
                assert positions[0] >= 1, (n_requests, n_checkpoints)
                assert (np.diff(positions) >= 1).all(), (n_requests, n_checkpoints)

    def test_evenly_spaced_when_no_collisions(self):
        from repro.simulation.engine import _checkpoint_positions

        assert _checkpoint_positions(100, 4).tolist() == [25, 50, 75, 100]
        assert _checkpoint_positions(20, 20).tolist() == list(range(1, 21))

    def test_empty_trace_rejected(self):
        from repro.simulation.engine import _checkpoint_positions

        with pytest.raises(SimulationError):
            _checkpoint_positions(0, 10)

    def test_run_records_exactly_min_checkpoints(self, small_leafspine):
        for n_requests, n_checkpoints in [(7, 5), (13, 13), (9, 20), (40, 7)]:
            trace = uniform_random_trace(n_nodes=8, n_requests=n_requests, seed=1)
            algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
            result = run_simulation(
                algo, trace, SimulationConfig(checkpoints=n_checkpoints)
            )
            assert len(result.series.requests) == min(n_checkpoints, n_requests)
            assert result.series.requests[-1] == n_requests


class TestCheckpointPositionOverride:
    """SimulationConfig.checkpoint_positions replaces the even default."""

    def _run(self, positions, n_requests=60, backend="fast", algo_cls=RBMA):
        trace = zipf_pair_trace(n_nodes=8, n_requests=n_requests, seed=3)
        topo_cfg = MatchingConfig(b=2, alpha=4)
        from repro.topology import LeafSpineTopology

        algo = algo_cls(LeafSpineTopology(n_racks=8, n_spines=2), topo_cfg, rng=1)
        return run_simulation(
            algo,
            trace,
            SimulationConfig(
                checkpoint_positions=positions, matching_backend=backend
            ),
        )

    def test_override_is_respected_on_both_replay_paths(self):
        positions = (1, 4, 16, 60)
        for backend in ("fast", "reference"):
            result = self._run(positions, backend=backend)
            assert result.series.requests.tolist() == list(positions)

    def test_override_may_stop_short_of_the_trace_end(self):
        # Positions ending early still serve (and total) the whole trace.
        result = self._run((5, 10), n_requests=40)
        assert result.series.requests.tolist() == [5, 10]
        assert result.n_requests == 40
        final = self._run((5, 10, 40), n_requests=40)
        assert result.series.routing_cost.tolist() == final.series.routing_cost.tolist()[:2]
        assert result.total_routing_cost == final.total_routing_cost

    def test_override_beyond_trace_rejected(self):
        with pytest.raises(SimulationError, match="checkpoint_positions"):
            self._run((10, 100), n_requests=50)

    def test_validation_rejects_bad_positions(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulationConfig(checkpoint_positions=(3, 3, 5))
        with pytest.raises(ConfigurationError):
            SimulationConfig(checkpoint_positions=(0, 5))
        with pytest.raises(ConfigurationError):
            SimulationConfig(checkpoint_positions=())

    def test_positions_coerced_to_int_tuple(self):
        config = SimulationConfig(checkpoint_positions=[1, 5, 9])
        assert config.checkpoint_positions == (1, 5, 9)
        assert config.to_dict()["checkpoint_positions"] == [1, 5, 9]
        assert SimulationConfig.from_dict(config.to_dict()) == config

    def test_log_spaced_helper_contract(self):
        from repro.simulation import log_spaced_checkpoints

        assert log_spaced_checkpoints(10_000, 5) == (1, 10, 100, 1000, 10000)
        for n_requests in (1, 2, 7, 97, 1000):
            for k in (1, 2, 5, 20, 200):
                positions = log_spaced_checkpoints(n_requests, k)
                assert len(positions) == min(k, n_requests)
                assert positions[-1] == n_requests
                assert positions[0] >= 1
                assert all(b > a for a, b in zip(positions, positions[1:]))

    def test_log_spaced_positions_survive_spec_roundtrip(self):
        from repro.experiments import ExperimentSpec
        from repro.simulation import log_spaced_checkpoints

        spec = ExperimentSpec(
            algorithm={"name": "rbma", "b": 2, "alpha": 4},
            traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 100}},
            simulation={"checkpoint_positions": log_spaced_checkpoints(100, 6)},
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.simulation.checkpoint_positions == spec.simulation.checkpoint_positions
        result = spec.execute()
        assert result.series.requests.tolist() == list(
            log_spaced_checkpoints(100, 6)
        )


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        first = timer.elapsed
        with timer:
            time.sleep(0.01)
        assert timer.elapsed > first

    def test_start_twice_rejected(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert not timer.running

    def test_elapsed_while_running(self):
        timer = Timer()
        timer.start()
        assert timer.running
        assert timer.elapsed >= 0.0
        timer.stop()


class TestRunSimulation:
    def test_result_metadata(self, small_fattree, fb_like_trace):
        algo = RBMA(small_fattree, MatchingConfig(b=3, alpha=8), rng=0)
        result = run_simulation(algo, fb_like_trace, SimulationConfig(checkpoints=10, seed=4))
        assert result.algorithm == "rbma"
        assert result.workload == "facebook-database"
        assert result.b == 3
        assert result.alpha == 8
        assert result.n_requests == len(fb_like_trace)
        assert result.seed == 4

    def test_series_monotone_and_consistent(self, small_fattree, fb_like_trace):
        algo = RBMA(small_fattree, MatchingConfig(b=3, alpha=8), rng=0)
        result = run_simulation(algo, fb_like_trace, SimulationConfig(checkpoints=10))
        series = result.series
        assert np.all(np.diff(series.requests) > 0)
        assert np.all(np.diff(series.routing_cost) >= 0)
        assert np.all(np.diff(series.reconfiguration_cost) >= 0)
        assert np.all(np.diff(series.elapsed_seconds) >= 0)
        assert series.requests[-1] == len(fb_like_trace)
        assert series.routing_cost[-1] == pytest.approx(result.total_routing_cost)

    def test_checkpoint_count(self, small_fattree, fb_like_trace):
        algo = ObliviousRouting(small_fattree, MatchingConfig(b=2, alpha=4))
        result = run_simulation(algo, fb_like_trace, SimulationConfig(checkpoints=7))
        assert len(result.series.requests) == 7

    def test_more_checkpoints_than_requests(self, small_leafspine):
        trace = uniform_random_trace(n_nodes=8, n_requests=5, seed=0)
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        result = run_simulation(algo, trace, SimulationConfig(checkpoints=50))
        # Contract: short traces checkpoint every request, never fewer.
        assert result.series.requests.tolist() == [1, 2, 3, 4, 5]

    def test_offline_algorithm_is_fitted(self, small_fattree, fb_like_trace):
        algo = StaticOfflineBMA(small_fattree, MatchingConfig(b=3, alpha=8))
        result = run_simulation(algo, fb_like_trace)
        assert algo.fitted
        assert result.matched_fraction > 0.0

    def test_validate_flag(self, small_fattree, fb_like_trace):
        algo = BMA(small_fattree, MatchingConfig(b=2, alpha=8))
        run_simulation(algo, fb_like_trace, validate=True)

    def test_rejects_reused_algorithm(self, small_fattree, fb_like_trace):
        algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=8), rng=0)
        run_simulation(algo, fb_like_trace)
        with pytest.raises(SimulationError):
            run_simulation(algo, fb_like_trace)
        algo.reset()
        run_simulation(algo, fb_like_trace)  # fine after reset

    def test_rejects_oversized_trace(self, small_leafspine):
        trace = uniform_random_trace(n_nodes=20, n_requests=10, seed=0)
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        with pytest.raises(SimulationError):
            run_simulation(algo, trace)

    def test_empty_trace_rejected(self, small_leafspine):
        trace = uniform_random_trace(n_nodes=8, n_requests=0, seed=0)
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        with pytest.raises(SimulationError):
            run_simulation(algo, trace)

    def test_matching_history_collection(self, small_leafspine):
        trace = zipf_pair_trace(n_nodes=8, n_requests=50, seed=1)
        algo = RBMA(small_leafspine, MatchingConfig(b=2, alpha=2), rng=0)
        result = run_simulation(
            algo, trace, SimulationConfig(checkpoints=5, collect_matching_history=True)
        )
        history = result.extra["matching_history"]
        assert len(history) == 50
        assert all(isinstance(h, frozenset) for h in history)

    def test_oblivious_cost_matches_trace_lengths(self, small_leafspine, uniform_trace):
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        result = run_simulation(algo, uniform_trace)
        assert result.total_routing_cost == pytest.approx(2.0 * len(uniform_trace))
        assert result.total_reconfiguration_cost == 0.0


from repro.experiments.observers import SimulationObserver


class TestEngineCheckpointOverrideValidation:
    """The engine re-validates explicit positions at resolution time.

    ``SimulationConfig.__post_init__`` validates at construction, but configs
    doctored after the fact (or deserialised by other code) reach the engine
    unchecked — ``_validate_checkpoint_override`` must reject them with a
    clear :class:`SimulationError` instead of silently truncating or looping.
    """

    def _validate(self, positions):
        from repro.simulation.engine import _validate_checkpoint_override

        return _validate_checkpoint_override(positions)

    def test_accepts_integral_values_of_any_numeric_dtype(self):
        assert self._validate((1, 5, 9)).tolist() == [1, 5, 9]
        assert self._validate([10.0, 20.0]).tolist() == [10, 20]
        assert self._validate(np.array([3, 7], dtype=np.uint16)).tolist() == [3, 7]

    def test_rejects_non_integral_floats_instead_of_truncating(self):
        with pytest.raises(SimulationError, match="refusing to silently truncate"):
            self._validate((5, 10.7))
        with pytest.raises(SimulationError, match="refusing to silently truncate"):
            self._validate((float("nan"),))

    def test_rejects_positions_below_one(self):
        with pytest.raises(SimulationError, match=">= 1"):
            self._validate((0, 5))
        with pytest.raises(SimulationError, match=">= 1"):
            self._validate((-3, 5))

    def test_rejects_non_increasing_positions(self):
        with pytest.raises(SimulationError, match="strictly increasing"):
            self._validate((3, 3, 5))
        with pytest.raises(SimulationError, match="strictly increasing"):
            self._validate((9, 4))

    def test_rejects_empty_and_multidimensional(self):
        with pytest.raises(SimulationError, match="non-empty 1-D"):
            self._validate(())
        with pytest.raises(SimulationError, match="non-empty 1-D"):
            self._validate([[1, 2], [3, 4]])

    def test_rejects_non_numeric(self):
        with pytest.raises(SimulationError, match="must be integers"):
            self._validate(("one", "two"))

    def test_doctored_config_fails_at_run_time_not_silently(self, small_leafspine):
        """A config whose positions bypassed __post_init__ still fails loudly."""
        config = SimulationConfig(checkpoint_positions=(5, 10))
        object.__setattr__(config, "checkpoint_positions", (5, 10.7))
        trace = zipf_pair_trace(n_nodes=8, n_requests=40, seed=3)
        algo = RBMA(small_leafspine, MatchingConfig(b=2, alpha=4), rng=1)
        with pytest.raises(SimulationError, match="refusing to silently truncate"):
            run_simulation(algo, trace, config)


class _BatchRecorder(SimulationObserver):
    """Records the (start, stop) of every batch and when on_end fires."""

    def __init__(self, batch_interval=None):
        self.batch_interval = batch_interval
        self.batches = []
        self.ended_after = None

    def on_request_batch(self, context, start, stop):
        self.batches.append((start, stop))

    def on_end(self, context, result):
        self.ended_after = list(self.batches)


class TestObserverBatchTiling:
    """Observers see every request exactly once before on_end (tail flush).

    Regression for the trailing-batch gap: with explicit checkpoints ending
    before the trace end (or a batch interval not dividing the length), the
    final partial batch must still be delivered before ``on_end``.
    """

    def _run(self, n_requests, config, batch_interval=None, stream_chunk=None):
        from repro.traffic.stream import TraceStream

        trace = zipf_pair_trace(n_nodes=8, n_requests=n_requests, seed=3)
        from repro.topology import LeafSpineTopology

        algo = RBMA(LeafSpineTopology(n_racks=8), MatchingConfig(b=2, alpha=4), rng=1)
        recorder = _BatchRecorder(batch_interval=batch_interval)
        source = (
            trace if stream_chunk is None
            else TraceStream.from_trace(trace, chunk_size=stream_chunk)
        )
        run_simulation(algo, source, config, observers=[recorder])
        return recorder

    def _assert_tiles(self, recorder, n_requests):
        batches = recorder.batches
        assert batches, "observer saw no batches"
        assert batches[0][0] == 0
        for (_, stop), (start, _) in zip(batches, batches[1:]):
            assert start == stop, f"gap or overlap in batches: {batches}"
        assert batches[-1][1] == n_requests
        assert recorder.ended_after == batches, "on_end fired before the tail flush"

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_early_checkpoints_still_flush_the_tail(self, backend):
        config = SimulationConfig(
            checkpoint_positions=(5, 10), matching_backend=backend
        )
        recorder = self._run(40, config)
        self._assert_tiles(recorder, 40)

    @pytest.mark.parametrize("backend", ["fast", "reference"])
    def test_partial_final_interval_is_delivered(self, backend):
        config = SimulationConfig(checkpoints=3, matching_backend=backend)
        recorder = self._run(40, config, batch_interval=7)
        self._assert_tiles(recorder, 40)

    @pytest.mark.parametrize("chunk", [7, 16, 100])
    def test_streamed_replay_tiles_identically(self, chunk):
        config = SimulationConfig(checkpoint_positions=(5, 10), matching_backend="fast")
        recorder = self._run(40, config, stream_chunk=chunk)
        self._assert_tiles(recorder, 40)
        materialized = self._run(40, config)
        assert recorder.batches[-1][1] == materialized.batches[-1][1] == 40
