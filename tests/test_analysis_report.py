"""Tests for the Markdown report generator."""

import numpy as np
import pytest

from repro.analysis import markdown_report, write_markdown_report
from repro.errors import SimulationError
from repro.simulation import CheckpointSeries, RunResult, aggregate_runs


def _aggregate(algorithm, b, values):
    n = len(values)
    series = CheckpointSeries(
        requests=np.arange(1, n + 1, dtype=np.int64) * 100,
        routing_cost=np.asarray(values, dtype=float),
        reconfiguration_cost=np.zeros(n),
        elapsed_seconds=np.linspace(0.05, 0.4, n),
        matched_fraction=np.linspace(0, 0.7, n),
    )
    return aggregate_runs([
        RunResult(algorithm=algorithm, workload="facebook-database", topology="fat-tree",
                  b=b, alpha=15.0, n_requests=n * 100, seed=0, series=series,
                  total_routing_cost=float(values[-1]), total_reconfiguration_cost=0.0,
                  total_elapsed_seconds=0.4, matched_fraction=0.7)
    ])


@pytest.fixture
def results():
    return {
        "rbma (b: 12)": _aggregate("rbma", 12, [100, 200, 300]),
        "bma (b: 12)": _aggregate("bma", 12, [110, 220, 330]),
        "oblivious (b: 12)": _aggregate("oblivious", 12, [200, 400, 600]),
    }


class TestMarkdownReport:
    def test_contains_heading_table_and_chart(self, results):
        report = markdown_report(results, title="Figure 1a", description="demo text")
        assert report.startswith("## Figure 1a")
        assert "demo text" in report
        assert "| configuration |" in report
        assert "rbma (b: 12)" in report
        assert "```" in report  # chart block

    def test_reduction_column_against_oblivious(self, results):
        report = markdown_report(results, title="t")
        assert "reduction vs oblivious" in report
        assert "50.0%" in report  # rbma 300 vs oblivious 600

    def test_no_oblivious_baseline(self, results):
        del results["oblivious (b: 12)"]
        report = markdown_report(results, title="t")
        assert "reduction vs oblivious" not in report

    def test_series_table_optional(self, results):
        with_series = markdown_report(results, title="t", include_series=True)
        without = markdown_report(results, title="t", include_series=False)
        assert "Per-checkpoint routing cost" in with_series
        assert "Per-checkpoint routing cost" not in without

    def test_chart_optional(self, results):
        report = markdown_report(results, title="t", include_chart=False)
        assert "```" not in report

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            markdown_report({}, title="t")

    def test_write_to_file(self, results, tmp_path):
        path = write_markdown_report(results, tmp_path / "sub" / "report.md", title="Fig X")
        text = path.read_text()
        assert text.startswith("## Fig X")
        assert path.parent.name == "sub"
