"""Property-based tests for the BMatching structure (hypothesis)."""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.errors import DegreeConstraintError, MatchingError
from repro.matching import BMatching, greedy_b_matching
from repro.matching.validation import check_b_matching, degree_histogram

N_NODES = 8
B = 2


pairs_strategy = st.tuples(
    st.integers(min_value=0, max_value=N_NODES - 1),
    st.integers(min_value=0, max_value=N_NODES - 1),
).filter(lambda p: p[0] != p[1])


class BMatchingMachine(RuleBasedStateMachine):
    """Random add/remove/mark/prune sequences never break the invariants."""

    def __init__(self):
        super().__init__()
        self.matching = BMatching(N_NODES, B)
        self.model_edges: set = set()

    @rule(pair=pairs_strategy)
    def add_edge(self, pair):
        u, v = pair
        canonical = (min(u, v), max(u, v))
        if canonical in self.model_edges:
            with pytest.raises(MatchingError):
                self.matching.add(u, v)
            return
        degrees = degree_histogram(self.model_edges, N_NODES)
        if degrees[u] >= B or degrees[v] >= B:
            with pytest.raises(DegreeConstraintError):
                self.matching.add(u, v)
            return
        self.matching.add(u, v)
        self.model_edges.add(canonical)

    @rule(pair=pairs_strategy)
    def remove_edge(self, pair):
        u, v = pair
        canonical = (min(u, v), max(u, v))
        if canonical in self.model_edges:
            self.matching.remove(u, v)
            self.model_edges.discard(canonical)
        else:
            with pytest.raises(MatchingError):
                self.matching.remove(u, v)

    @rule(pair=pairs_strategy)
    def mark_edge(self, pair):
        u, v = pair
        present = (min(u, v), max(u, v)) in self.model_edges
        assert self.matching.mark_for_removal(u, v) == present

    @rule(node=st.integers(min_value=0, max_value=N_NODES - 1))
    def prune_if_possible(self, node):
        marked_here = [p for p in self.matching.edges_at(node) if p in self.matching.marked_edges]
        if self.matching.degree(node) >= B and not marked_here:
            with pytest.raises(DegreeConstraintError):
                self.matching.prune_to_capacity(node)
        else:
            removed = self.matching.prune_to_capacity(node)
            for pair in removed:
                self.model_edges.discard(pair)

    @invariant()
    def matches_model(self):
        assert self.matching.edges == frozenset(self.model_edges)

    @invariant()
    def valid_b_matching(self):
        check_b_matching(self.matching.edges, N_NODES, B)

    @invariant()
    def degrees_consistent(self):
        expected = degree_histogram(self.model_edges, N_NODES)
        for node in range(N_NODES):
            assert self.matching.degree(node) == expected[node]

    @invariant()
    def marks_subset_of_edges(self):
        assert self.matching.marked_edges <= self.matching.edges


TestBMatchingStateMachine = BMatchingMachine.TestCase
TestBMatchingStateMachine.settings = settings(max_examples=40, stateful_step_count=30,
                                              deadline=None)


@given(
    weights=st.dictionaries(
        keys=pairs_strategy.map(lambda p: (min(p), max(p))),
        values=st.floats(min_value=0.1, max_value=100, allow_nan=False),
        max_size=20,
    ),
    b=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=80, deadline=None)
def test_greedy_b_matching_always_feasible(weights, b):
    chosen = greedy_b_matching(weights, N_NODES, b)
    check_b_matching(chosen, N_NODES, b)
    # Maximality: no remaining pair could still be added.
    degrees = degree_histogram(chosen, N_NODES)
    for (u, v), w in weights.items():
        if (u, v) not in chosen and w > 0:
            assert degrees[u] >= b or degrees[v] >= b
