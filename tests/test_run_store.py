"""Persistent run store: fingerprints, cache semantics, statistics, CLI.

The contract under test (see :mod:`repro.store`):

* :func:`fingerprint_spec` is a pure function of the *experiment* — dict key
  order, ``10`` vs ``10.0``, and numpy scalar-ness cannot change it; the
  seed, every parameter, the schema version, and the effective kernels can.
* A store hit is **bit-identical** to the cold run that produced it, for
  every registered algorithm, on both the in-process and
  :func:`run_specs_parallel` execution paths — and a fully warm grid
  performs zero simulation work (asserted by making simulation impossible).
* ``repro runs list|show|stats|gc`` work end-to-end on a populated store.
"""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.cli import main
from repro.core.registry import ALGORITHMS
from repro.errors import ConfigurationError, SimulationError
from repro.experiments import ExperimentSpec, canonical_data
from repro.simulation import parallel as parallel_mod
from repro.simulation import runner as runner_mod
from repro.simulation.parallel import run_specs_parallel
from repro.simulation.results import AggregateResult, RunResult, aggregate_runs
from repro.simulation.runner import ExperimentRunner, execute_experiment_spec
from repro.simulation.sweep import run_experiments
from repro.store import (
    SCHEMA_VERSION,
    RunStore,
    StoreConfig,
    bootstrap_ci,
    default_store,
    fingerprint_spec,
    group_statistics,
    resolve_store,
    sample_statistics,
    spec_statistics,
    store_counters,
    store_statistics,
)
from repro.store.run_store import _atomic_write_json

pytestmark = pytest.mark.store

SEED = 20230


def _spec(**overrides) -> ExperimentSpec:
    """A tiny seeded zipf experiment, overridable per test."""
    base = {
        "algorithm": {"name": "rbma", "b": 2, "alpha": 4},
        "traffic": {"name": "zipf",
                    "params": {"n_nodes": 10, "n_requests": 120, "exponent": 1.3}},
        "simulation": {"checkpoints": 4},
        "seed": SEED,
    }
    base.update(overrides)
    return ExperimentSpec(**base)


def _assert_identical(a: RunResult, b: RunResult) -> None:
    assert a.to_dict() == b.to_dict()


def _permuted(data):
    """The same plain data with every dict's key order reversed."""
    if isinstance(data, dict):
        return {k: _permuted(data[k]) for k in reversed(list(data))}
    if isinstance(data, list):
        return [_permuted(item) for item in data]
    return data


def _forbid_simulation(monkeypatch, message="simulation ran on a warm store"):
    """Make any actual simulation work raise, in every execution layer."""
    def _boom(*_args, **_kwargs):
        raise AssertionError(message)
    monkeypatch.setattr(runner_mod, "run_simulation", _boom)
    monkeypatch.setattr(ExperimentSpec, "build_trace", _boom)


# ---------------------------------------------------------------------------
# canonical_data / canonical_dict
# ---------------------------------------------------------------------------

class TestCanonicalData:
    def test_sorts_keys_recursively(self):
        out = canonical_data({"b": {"z": 1, "a": 2}, "a": 3})
        assert list(out) == ["a", "b"]
        assert list(out["b"]) == ["a", "z"]

    def test_integral_floats_become_ints(self):
        assert canonical_data(10.0) == 10
        assert isinstance(canonical_data(10.0), int)
        assert canonical_data(10.5) == 10.5

    def test_bools_survive(self):
        assert canonical_data(True) is True
        assert canonical_data(False) is False

    def test_numpy_scalars_unwrap(self):
        assert canonical_data(np.float64(15.0)) == 15
        assert isinstance(canonical_data(np.float64(15.0)), int)
        assert canonical_data(np.int64(7)) == 7
        assert canonical_data(np.float64(1.5)) == 1.5

    def test_tuples_become_lists(self):
        assert canonical_data((1, 2.0, "x")) == [1, 2, "x"]

    def test_non_finite_rejected_with_path(self):
        with pytest.raises(ConfigurationError, match=r"spec\.a\[1\]"):
            canonical_data({"a": [1.0, float("nan")]})
        with pytest.raises(ConfigurationError):
            canonical_data(float("inf"))

    def test_non_string_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="non-string key"):
            canonical_data({1: "x"})

    def test_unsupported_types_rejected(self):
        with pytest.raises(ConfigurationError, match="not JSON-stable"):
            canonical_data({"a": object()})

    def test_canonical_dict_is_sorted_and_equal_under_permutation(self):
        spec = _spec()
        canon = spec.canonical_dict()
        assert list(canon) == sorted(canon)
        assert canonical_data(_permuted(spec.to_dict())) == canon


# ---------------------------------------------------------------------------
# fingerprint_spec
# ---------------------------------------------------------------------------

class TestFingerprint:
    def test_is_stable_hex(self):
        fp = fingerprint_spec(_spec())
        assert fp == fingerprint_spec(_spec())
        assert len(fp) == 40
        assert set(fp) <= set("0123456789abcdef")

    def test_key_order_invariance(self):
        data = _spec().to_dict()
        assert fingerprint_spec(data) == fingerprint_spec(_permuted(data))

    def test_float_intness_invariance(self):
        data_int = _spec().to_dict()
        data_float = json.loads(json.dumps(data_int))
        data_float["algorithm"]["alpha"] = float(data_int["algorithm"]["alpha"])
        data_float["algorithm"]["b"] = float(data_int["algorithm"]["b"])
        assert fingerprint_spec(data_int) == fingerprint_spec(data_float)

    def test_checkpoint_position_intness_invariance(self):
        ints = _spec(simulation={"checkpoints": 4,
                                 "checkpoint_positions": [30, 60, 90, 120]}).to_dict()
        floats = json.loads(json.dumps(ints))
        floats["simulation"]["checkpoint_positions"] = [30.0, 60.0, 90.0, 120.0]
        assert fingerprint_spec(ints) == fingerprint_spec(floats)

    def test_seed_sensitivity(self):
        assert fingerprint_spec(_spec(seed=1)) != fingerprint_spec(_spec(seed=2))

    def test_parameter_sensitivity(self):
        base = fingerprint_spec(_spec())
        assert fingerprint_spec(
            _spec(algorithm={"name": "rbma", "b": 3, "alpha": 4})) != base
        assert fingerprint_spec(
            _spec(algorithm={"name": "greedy", "b": 2, "alpha": 4})) != base

    def test_name_and_repeats_excluded(self):
        base = fingerprint_spec(_spec())
        assert fingerprint_spec(_spec(name="pretty label")) == base
        assert fingerprint_spec(_spec(repeats=5)) == base

    def test_schema_version_bump_changes_fingerprint(self):
        spec = _spec()
        assert fingerprint_spec(spec) != fingerprint_spec(
            spec, schema_version=SCHEMA_VERSION + 1)

    def test_unseeded_spec_rejected(self):
        with pytest.raises(ConfigurationError, match="unseeded"):
            fingerprint_spec(_spec(seed=None))

    def test_numba_fallback_distinguishes_runs(self, monkeypatch):
        """A numba-requesting spec fingerprints differently depending on
        whether the compiled kernel is genuinely active — and a spec that
        never asked for numba is unaffected."""
        import repro.store.fingerprint as fp_mod

        numba_spec = _spec(simulation={"checkpoints": 4,
                                       "matching_backend": "numba"})
        fast_spec = _spec(simulation={"checkpoints": 4,
                                      "matching_backend": "fast"})
        monkeypatch.setattr(fp_mod, "numba_backend_active", lambda: False)
        numba_inactive = fingerprint_spec(numba_spec)
        fast_inactive = fingerprint_spec(fast_spec)
        monkeypatch.setattr(fp_mod, "numba_backend_active", lambda: True)
        assert fingerprint_spec(numba_spec) != numba_inactive
        assert fingerprint_spec(fast_spec) == fast_inactive

    def test_solver_kernel_only_covers_static_algorithms(self, monkeypatch):
        """Flipping the effective solver kernel re-keys SO-BMA runs but
        cannot invalidate cached runs of online algorithms."""
        import repro.store.fingerprint as fp_mod

        sobma = _spec(algorithm={"name": "so-bma", "b": 2, "alpha": 4})
        rbma = _spec()
        monkeypatch.setattr(fp_mod, "resolve_solver_backend", lambda _req: "array")
        sobma_array, rbma_array = fingerprint_spec(sobma), fingerprint_spec(rbma)
        monkeypatch.setattr(fp_mod, "resolve_solver_backend", lambda _req: "nx")
        assert fingerprint_spec(sobma) != sobma_array
        assert fingerprint_spec(rbma) == rbma_array


# ---------------------------------------------------------------------------
# RunStore CRUD, layout, durability
# ---------------------------------------------------------------------------

class TestRunStore:
    def test_put_get_roundtrip_and_sharded_layout(self, tmp_path):
        store = RunStore(tmp_path / "store")
        result = _spec().execute()
        fp = store.put(result)
        assert fp == fingerprint_spec(_spec())
        entry_file = tmp_path / "store" / "runs" / fp[:2] / f"{fp}.json"
        assert entry_file.exists()
        assert store.contains(fp) and fp in store and len(store) == 1
        _assert_identical(store.get(fp), result)
        # spec refs resolve through the same key
        assert store.contains(_spec())
        _assert_identical(store.get(_spec().to_dict()), result)

    def test_get_miss_returns_none_and_counts(self, tmp_path):
        store = RunStore(tmp_path)
        assert store.get("ab" * 20) is None
        counts = store.counters.to_dict()
        assert counts["misses"] == 1
        assert counts["hits"] == 0 and counts["writes"] == 0
        assert counts["quarantined"] == 0

    def test_put_without_provenance_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        bare = replace(_spec().execute(), spec=None)
        with pytest.raises(ConfigurationError, match="provenance"):
            store.put(bare)
        # an explicit fingerprint substitutes for the missing spec
        fp = store.put(bare, fingerprint="ab" * 20)
        assert store.contains(fp)

    def test_reput_appends_history_and_preserves_written_at(self, tmp_path):
        store = RunStore(tmp_path)
        result = _spec().execute()
        fp = store.put(result)
        first = store.get_payload(fp)
        store.put(result)
        payload = store.get_payload(fp)
        assert len(payload["history"]) == 2
        assert payload["written_at"] == first["written_at"]
        assert store.list_runs()[0].runs == 2

    def test_delete(self, tmp_path):
        store = RunStore(tmp_path)
        fp = store.put(_spec().execute())
        assert store.delete(fp) is True
        assert not store.contains(fp) and len(store) == 0
        assert store.delete(fp) is False

    def test_list_runs_newest_first_and_find(self, tmp_path):
        store = RunStore(tmp_path)
        fps = [store.put(_spec(seed=s).execute()) for s in (1, 2, 3)]
        listed = [e.fingerprint for e in store.list_runs()]
        assert sorted(listed) == sorted(fps)
        # same-second writes tie-break by fingerprint, descending
        assert listed == sorted(listed, key=lambda f: (store.get_payload(f)["written_at"], f), reverse=True)
        assert [e.fingerprint for e in store.find(fps[0][:12])] == [fps[0]]
        assert store.find("nonexistent") == []

    def test_index_is_rebuilt_when_missing_or_corrupt(self, tmp_path):
        store = RunStore(tmp_path)
        fp = store.put(_spec().execute())
        (tmp_path / "index.json").unlink()
        fresh = RunStore(tmp_path)
        assert [e.fingerprint for e in fresh.list_runs()] == [fp]
        (tmp_path / "index.json").write_text("{ torn")
        corrupt = RunStore(tmp_path)
        assert len(corrupt) == 1
        assert corrupt.reindex() == 1
        assert json.loads((tmp_path / "index.json").read_text())["format"] == 1

    def test_corrupt_entry_file_quarantines_as_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        result = _spec().execute()
        fp = store.put(result)
        store.entry_path(fp).write_text("{ torn")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert store.get_payload(fp) is None
        # The torn file moved aside rather than poisoning every later read.
        assert not store.entry_path(fp).exists()
        assert (tmp_path / "quarantine" / f"{fp}.json").exists()
        assert store.counters.to_dict()["quarantined"] == 1
        # The entry can be recomputed and stored again afterwards.
        assert store.put(result) == fp
        assert store.get_payload(fp) is not None

    def test_malformed_fingerprint_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ConfigurationError, match="malformed fingerprint"):
            store.entry_path("../escape")
        with pytest.raises(ConfigurationError):
            store.entry_path("")

    def test_shard_width_validation(self, tmp_path):
        with pytest.raises(ConfigurationError, match="shard_width"):
            StoreConfig(root=tmp_path, shard_width=0)
        store = RunStore(StoreConfig(root=tmp_path, shard_width=4))
        fp = store.put(_spec().execute())
        assert store.entry_path(fp).parent.name == fp[:4]

    def test_gc_by_age_count_and_dry_run(self, tmp_path):
        from datetime import datetime, timedelta, timezone

        store = RunStore(tmp_path)
        fps = [store.put(_spec(seed=s).execute()) for s in (1, 2, 3)]
        # dry_run reports without deleting
        doomed = store.gc(max_entries=1, dry_run=True)
        assert len(doomed) == 2 and len(store) == 3
        # age: everything is newer than the cutoff from "now"; from the
        # future everything expires
        assert store.gc(max_age_days=1.0) == []
        future = datetime.now(timezone.utc) + timedelta(days=30)
        store2 = RunStore(tmp_path)
        deleted = store2.gc(max_age_days=7.0, now=future)
        assert sorted(deleted) == sorted(fps) and len(store2) == 0
        # count: keep newest N
        fps = [store2.put(_spec(seed=s).execute()) for s in (1, 2, 3)]
        assert len(store2.gc(max_entries=2)) == 1 and len(store2) == 2
        with pytest.raises(ConfigurationError):
            store2.gc(max_entries=-1)
        with pytest.raises(ConfigurationError):
            store2.gc(max_age_days=-0.5)


class TestStoreResolution:
    def test_resolve_none_without_env_is_none(self):
        assert resolve_store(None) is None

    def test_resolve_false_disables(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path))
        assert resolve_store(False) is None

    def test_resolve_true_is_ambiguous(self):
        with pytest.raises(ConfigurationError, match="ambiguous"):
            resolve_store(True)

    def test_resolve_passthrough_and_paths(self, tmp_path):
        store = RunStore(tmp_path)
        assert resolve_store(store) is store
        assert resolve_store(str(tmp_path)).root == tmp_path
        assert resolve_store(StoreConfig(root=tmp_path)).root == tmp_path

    def test_resolve_garbage_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot interpret"):
            resolve_store(42)

    @pytest.mark.parametrize("token", ["", "0", "off", "FALSE", "no", "None", "disabled"])
    def test_env_falsey_tokens_disable_default(self, monkeypatch, token):
        monkeypatch.setenv("REPRO_RUN_STORE", token)
        assert default_store() is None

    def test_env_path_enables_and_caches_instance(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RUN_STORE", str(tmp_path))
        store = default_store()
        assert store is not None and store.root == tmp_path
        assert default_store() is store
        assert resolve_store(None) is store


# ---------------------------------------------------------------------------
# Cache-hit bit-identity, across every algorithm and execution path
# ---------------------------------------------------------------------------

def _canonical_algorithms():
    return sorted({ALGORITHMS.canonical(name) for name in ALGORITHMS.names()})


class TestBitIdentity:
    @pytest.mark.parametrize("algorithm", _canonical_algorithms())
    def test_hit_equals_cold_run_with_zero_work(self, tmp_path, monkeypatch, algorithm):
        spec = _spec(algorithm={"name": algorithm, "b": 2, "alpha": 4})
        store = RunStore(tmp_path)
        cold = execute_experiment_spec(spec, store=store)
        _forbid_simulation(monkeypatch, f"{algorithm}: simulated despite warm store")
        warm = execute_experiment_spec(spec, store=store)
        _assert_identical(cold, warm)
        assert store.counters.hits == 1

    def test_hit_restamps_requesting_specs_provenance(self, tmp_path):
        store = RunStore(tmp_path)
        execute_experiment_spec(_spec(name="first"), store=store)
        warm = execute_experiment_spec(_spec(name="second"), store=store)
        assert warm.spec["name"] == "second"


class TestExecutionPaths:
    def test_unseeded_spec_never_stored(self, tmp_path):
        store = RunStore(tmp_path)
        execute_experiment_spec(_spec(seed=None), store=store)
        assert len(store) == 0 and store.counters.writes == 0

    def test_matching_history_collection_ineligible(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec(simulation={"checkpoints": 4, "collect_matching_history": True})
        execute_experiment_spec(spec, store=store)
        assert len(store) == 0

    def test_explicit_trace_bypasses_store(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec()
        trace = spec.build_trace(spec.run_seeds()[0])
        execute_experiment_spec(spec, trace=trace, store=store)
        assert len(store) == 0 and store.counters.to_dict()["hits"] == 0

    def test_observers_bypass_reads_but_still_write(self, tmp_path):
        from repro.experiments import CostTraceObserver

        store = RunStore(tmp_path)
        spec = _spec()
        fp = store.put(execute_experiment_spec(spec, store=store))
        observer = CostTraceObserver()
        execute_experiment_spec(spec, observers=(observer,), store=store)
        assert observer.events  # the run really happened
        assert len(store.get_payload(fp)["history"]) == 3  # cold + put + rerun

    def test_validate_bypasses_reads(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        spec = _spec()
        execute_experiment_spec(spec, store=store)
        calls = []
        real = runner_mod.run_simulation
        monkeypatch.setattr(
            runner_mod, "run_simulation",
            lambda *a, **k: calls.append(1) or real(*a, **k))
        execute_experiment_spec(spec, validate=True, store=store)
        assert calls  # validation forced a real run despite the warm store

    def test_runner_repetitions_hit_per_seed(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        runner = ExperimentRunner(repetitions=3, base_seed=11, store=store)
        cold = runner.run(_spec(seed=None))
        _forbid_simulation(monkeypatch)
        warm = ExperimentRunner(repetitions=3, base_seed=11, store=store).run(
            _spec(seed=None))
        assert cold.to_dict() == warm.to_dict()
        assert store.counters.hits == 3

    def test_run_experiments_incremental(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        specs = [_spec(), _spec(algorithm={"name": "greedy", "b": 2, "alpha": 4})]
        cold = run_experiments(specs, store=store)
        _forbid_simulation(monkeypatch)
        warm = run_experiments(specs, store=store)
        assert [a.to_dict() for a in cold] == [a.to_dict() for a in warm]

    def test_compare_on_shared_trace_warm_builds_nothing(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        specs = [_spec(seed=None),
                 _spec(seed=None, algorithm={"name": "oblivious", "b": 2, "alpha": 4})]
        runner = ExperimentRunner(repetitions=2, base_seed=5, store=store)
        cold = runner.compare_on_shared_trace(specs)
        # Zero work on rebuild: the shared trace is not even generated.
        _forbid_simulation(monkeypatch)
        warm = ExperimentRunner(repetitions=2, base_seed=5, store=store)\
            .compare_on_shared_trace(specs)
        assert {k: v.to_dict() for k, v in cold.items()} \
            == {k: v.to_dict() for k, v in warm.items()}

    def test_compare_on_shared_trace_partial_miss_recomputes_only_dirty(self, tmp_path):
        store = RunStore(tmp_path)
        warm_specs = [_spec(seed=None)]
        ExperimentRunner(base_seed=5, store=store).compare_on_shared_trace(warm_specs)
        writes_before = store.counters.writes
        both = warm_specs + [_spec(seed=None,
                                   algorithm={"name": "greedy", "b": 2, "alpha": 4})]
        ExperimentRunner(base_seed=5, store=store).compare_on_shared_trace(both)
        assert store.counters.writes == writes_before + 1  # only the new cell

    def test_run_many_uses_store(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        specs = [_spec(seed=None)]
        runner = ExperimentRunner(repetitions=2, base_seed=9, store=store)
        cold = runner.run_many(specs)
        _forbid_simulation(monkeypatch)
        warm = ExperimentRunner(repetitions=2, base_seed=9, store=store).run_many(specs)
        assert [a.to_dict() for a in cold] == [a.to_dict() for a in warm]


class TestRunSpecsParallelStore:
    def test_warm_grid_never_dispatches(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        grid = [_spec(seed=s) for s in (1, 2, 3)]
        cold = run_specs_parallel(grid, n_workers=1, store=store)
        def _boom(*_a, **_k):
            raise AssertionError("dispatched to execution despite warm store")
        monkeypatch.setattr(parallel_mod, "_execute_batch", _boom)
        warm = run_specs_parallel(grid, n_workers=1, store=store)
        for c, w in zip(cold, warm):
            _assert_identical(c, w)

    def test_mixed_hits_and_misses_preserve_order(self, tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        warm_spec = _spec(seed=1)
        run_specs_parallel([warm_spec], n_workers=1, store=store)
        grid = [_spec(seed=2), warm_spec, _spec(seed=3)]
        dispatched = []
        real = parallel_mod._execute_batch
        monkeypatch.setattr(
            parallel_mod, "_execute_batch",
            lambda specs, w, c: dispatched.extend(specs) or real(specs, w, c))
        results = run_specs_parallel(grid, n_workers=1, store=store)
        assert [s.seed for s in dispatched] == [2, 3]  # the hit never dispatched
        assert [r.spec["seed"] for r in results] == [2, 1, 3]  # input order preserved
        assert len(store) == 3

    def test_ineligible_specs_flow_through_uncached(self, tmp_path):
        store = RunStore(tmp_path)
        results = run_specs_parallel([_spec(seed=None)], n_workers=1, store=store)
        assert len(results) == 1 and len(store) == 0

    @pytest.mark.parallel
    def test_pool_path_warm_grid_is_bit_identical(self, tmp_path):
        store = RunStore(tmp_path)
        grid = [_spec(seed=s) for s in (1, 2, 3, 4)]
        cold = run_specs_parallel(grid, n_workers=2, store=store)
        warm = run_specs_parallel(grid, n_workers=2, store=store)
        for c, w in zip(cold, warm):
            _assert_identical(c, w)
        assert store.counters.hits == len(grid)


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

class TestStatistics:
    def test_bootstrap_ci_deterministic_and_degenerate(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(values) == bootstrap_ci(values)
        low, high = bootstrap_ci(values)
        assert low <= np.mean(values) <= high
        assert bootstrap_ci([5.0]) == (5.0, 5.0)
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci(values, confidence=1.5)

    def test_sample_statistics_covers(self):
        stats = sample_statistics([1.0, 1.1, 0.9, 1.05])
        assert stats.n == 4 and stats.covers(stats.mean)
        assert not stats.covers(100.0)
        with pytest.raises(ConfigurationError):
            sample_statistics([])

    def _put_history(self, store, spec, walls, costs=None):
        result = execute_experiment_spec(spec, store=False)
        fp = fingerprint_spec(spec)
        for i, wall in enumerate(walls):
            doctored = replace(result, total_elapsed_seconds=wall)
            if costs is not None:
                doctored = replace(doctored, total_routing_cost=costs[i],
                                   total_reconfiguration_cost=0.0)
            store.put(doctored, fingerprint=fp)
        return fp

    def test_runtime_regression_needs_history_and_an_outlier(self, tmp_path):
        store = RunStore(tmp_path)
        fp = self._put_history(store, _spec(), [1.0, 1.01, 0.99, 50.0])
        history = spec_statistics(store, fp)
        assert history.runtime_regression is True
        assert history.cost_regression is False
        assert history.n_runs == 4
        # exactly MIN_HISTORY samples is not enough evidence
        fp2 = self._put_history(store, _spec(seed=SEED + 1), [1.0, 1.0, 50.0])
        assert spec_statistics(store, fp2).runtime_regression is False
        # a latest sample inside the prior CI does not flag
        fp3 = self._put_history(store, _spec(seed=SEED + 2), [1.0, 1.04, 0.96, 1.08, 1.0])
        assert spec_statistics(store, fp3).runtime_regression is False

    def test_cost_drift_is_flagged_unconditionally(self, tmp_path):
        store = RunStore(tmp_path)
        fp = self._put_history(store, _spec(), [1.0, 1.0], costs=[100.0, 101.0])
        assert spec_statistics(store, fp).cost_regression is True

    def test_spec_statistics_missing_fingerprint(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no stored run"):
            spec_statistics(RunStore(tmp_path), "ab" * 20)

    def test_store_statistics_covers_every_entry(self, tmp_path):
        store = RunStore(tmp_path)
        for seed in (1, 2):
            execute_experiment_spec(_spec(seed=seed), store=store)
        assert len(store_statistics(store)) == 2

    def test_group_statistics_pools_seeds(self, tmp_path):
        store = RunStore(tmp_path)
        for seed in (1, 2, 3):
            execute_experiment_spec(_spec(seed=seed), store=store)
        execute_experiment_spec(
            _spec(algorithm={"name": "greedy", "b": 2, "alpha": 4}), store=store)
        groups = group_statistics(store)
        assert len(groups) == 2
        by_algo = {g.algorithm: g for g in groups}
        assert sorted(by_algo["rbma"].seeds) == [1, 2, 3]
        assert by_algo["rbma"].cost.n == 3
        assert by_algo["greedy"].cost.n == 1
        assert by_algo["rbma"].label == "rbma (b: 2)"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def _write_spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(_spec().to_json())
    return path


class TestCli:
    def test_run_twice_second_is_all_hits(self, tmp_path, capsys):
        spec_file = _write_spec_file(tmp_path)
        store_dir = tmp_path / "store"
        assert main(["run", str(spec_file), "--store", str(store_dir)]) == 0
        first = capsys.readouterr().out
        assert "store: 0 hit(s), 1 miss(es)" in first
        assert main(["run", str(spec_file), "--store", str(store_dir)]) == 0
        second = capsys.readouterr().out
        assert "store: 1 hit(s), 0 miss(es)" in second

    def test_no_store_flag_forces_cold(self, tmp_path, monkeypatch, capsys):
        store_dir = tmp_path / "store"
        monkeypatch.setenv("REPRO_RUN_STORE", str(store_dir))
        spec_file = _write_spec_file(tmp_path)
        assert main(["run", str(spec_file), "--no-store"]) == 0
        assert "store:" not in capsys.readouterr().out
        assert not store_dir.exists()

    def test_env_default_store_is_used(self, tmp_path, monkeypatch, capsys):
        store_dir = tmp_path / "store"
        monkeypatch.setenv("REPRO_RUN_STORE", str(store_dir))
        spec_file = _write_spec_file(tmp_path)
        assert main(["run", str(spec_file)]) == 0
        assert "store:" in capsys.readouterr().out
        assert store_dir.exists()

    def _populated_store(self, tmp_path):
        store_dir = tmp_path / "store"
        store = RunStore(store_dir)
        for seed in (1, 2):
            execute_experiment_spec(_spec(seed=seed), store=store)
        return store_dir, store

    def test_runs_list_show_stats_gc_end_to_end(self, tmp_path, capsys):
        store_dir, store = self._populated_store(tmp_path)
        assert main(["runs", "--store", str(store_dir), "list"]) == 0
        out = capsys.readouterr().out
        assert "2 stored run(s)" in out and "rbma" in out and "zipf" in out

        fp = store.list_runs()[0].fingerprint
        assert main(["runs", "--store", str(store_dir), "show", fp[:10]]) == 0
        out = capsys.readouterr().out
        assert fp in out and "total cost:" in out and "recomputations: 1" in out

        assert main(["runs", "--store", str(store_dir), "stats"]) == 0
        out = capsys.readouterr().out
        assert "2 stored run(s)" in out and "runtime mean" in out

        assert main(["runs", "--store", str(store_dir), "stats", "--group"]) == 0
        out = capsys.readouterr().out
        assert "1 configuration group(s)" in out and "over 2 seed(s)" in out

        assert main(["runs", "--store", str(store_dir), "gc",
                     "--max-entries", "1", "--dry-run"]) == 0
        assert "would delete 1 entry" in capsys.readouterr().out
        assert len(RunStore(store_dir)) == 2
        assert main(["runs", "--store", str(store_dir), "gc",
                     "--max-entries", "1"]) == 0
        assert "deleted 1 entry" in capsys.readouterr().out
        assert len(RunStore(store_dir)) == 1

    def test_runs_show_errors(self, tmp_path, capsys):
        store_dir, store = self._populated_store(tmp_path)
        assert main(["runs", "--store", str(store_dir), "show", "ffff"]) == 2
        assert "no stored run matches" in capsys.readouterr().err
        assert main(["runs", "--store", str(store_dir), "show", ""]) == 2
        assert "ambiguous" in capsys.readouterr().err

    def test_runs_without_store_configured_errors(self, capsys):
        assert main(["runs", "list"]) == 2
        assert "no run store configured" in capsys.readouterr().err

    def test_runs_without_subcommand_prints_usage(self, capsys):
        assert main(["runs"]) == 0
        assert "usage: repro runs" in capsys.readouterr().out

    def test_sweep_accepts_store_flags(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        argv = ["sweep", "--workload", "zipf", "--nodes", "8", "--requests", "150",
                "--b-values", "2", "--algorithms", "rbma", "--checkpoints", "4",
                "--store", str(store_dir)]
        assert main(argv) == 0
        capsys.readouterr()
        assert len(RunStore(store_dir)) >= 1
        assert main(argv) == 0  # warm pass stays green
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Result serialisation satellites
# ---------------------------------------------------------------------------

class TestResultRoundTrip:
    def test_aggregate_round_trip_symmetry(self, tmp_path):
        runs = [execute_experiment_spec(_spec(seed=s), store=False) for s in (1, 2)]
        agg = aggregate_runs(runs)
        rebuilt = AggregateResult.from_dict(json.loads(json.dumps(agg.to_dict())))
        assert rebuilt.to_dict() == agg.to_dict()
        path = tmp_path / "agg.json"
        agg.save_json(path)
        assert AggregateResult.load_json(path).to_dict() == agg.to_dict()

    def test_numpy_extras_serialise_deterministically(self, tmp_path):
        result = execute_experiment_spec(_spec(), store=False)
        doctored = replace(result, extra={
            "np_scalar": np.float64(1.5),
            "np_int": np.int64(3),
            "array": np.arange(3),
            "nested": {"inner": np.float64(2.0)},
            "tags": {"b", "a"},
        })
        data = doctored.to_dict()
        json.dumps(data)  # must be serialisable at all
        assert data["extra"]["np_scalar"] == 1.5
        assert data["extra"]["np_int"] == 3
        assert data["extra"]["array"] == [0, 1, 2]
        assert data["extra"]["nested"]["inner"] == 2.0
        assert data["extra"]["tags"] == ["a", "b"]
        store = RunStore(tmp_path)
        fp = store.put(doctored, fingerprint=fingerprint_spec(_spec()))
        _assert_identical(store.get(fp), doctored)


class TestCounters:
    def test_global_counters_accumulate_and_reset(self, tmp_path):
        from repro.store import reset_store_counters

        reset_store_counters()
        store = RunStore(tmp_path)
        execute_experiment_spec(_spec(), store=store)
        execute_experiment_spec(_spec(), store=store)
        counts = store_counters()
        assert counts["writes"] >= 1 and counts["hits"] >= 1
        reset_store_counters()
        assert not any(store_counters().values())

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        target = tmp_path / "payload.json"
        _atomic_write_json(target, {"ok": True})
        assert json.loads(target.read_text()) == {"ok": True}
        assert [p.name for p in tmp_path.iterdir()] == ["payload.json"]
