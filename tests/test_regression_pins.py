"""Regression pins: exact costs of deterministic algorithms on fixed scenarios.

These tests pin the behaviour of the *deterministic* algorithms (BMA, Greedy,
SO-BMA, Oblivious, Rotor) on small hand-checkable scenarios.  They are not
derived from the paper; they protect the implementation against accidental
behavioural drift (e.g. a refactor changing an eviction tie-break) that the
property tests would not notice because the result would still be feasible.

The golden-trace classes at the bottom extend the same idea to *every*
registered algorithm (randomized ones under a pinned seed) on a committed
800-request trace: total costs, matching counters, and the checkpoint series
are pinned in ``tests/data/golden/golden_pins.json`` for every matching
backend (reference, fast, and numba), so any kernel or replay-path change
that alters observable results fails loudly here.

Randomized algorithms are pinned under *both* rng modes: the legacy
``"stateful"`` mode must reproduce the pre-counter ``pins`` byte-identically
(the mode exists precisely so old results stay reachable), while the
``"counter"`` default pins its own ``pins_counter`` section.  To regenerate
the pins after an *intentional* behaviour change, run with
``REPRO_REGEN_GOLDEN=1`` and commit the updated JSON.
"""

import json
import os
from pathlib import Path

import pytest

from repro.config import MatchingConfig, SimulationConfig
from repro.core import BMA, GreedyBMA, ObliviousRouting, RotorBMA, StaticOfflineBMA
from repro.core.registry import ALGORITHMS
from repro.simulation import run_simulation
from repro.topology import LeafSpineTopology
from repro.traffic.base import Trace
from repro.types import Request, as_requests

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden"


@pytest.fixture
def topo():
    return LeafSpineTopology(n_racks=6)  # all pair distances are 2


#: A fixed scenario: two hot pairs sharing node 0, one cold pair.
SCENARIO = [(0, 1)] * 4 + [(0, 2)] * 4 + [(3, 4)] * 2 + [(0, 1)] * 2 + [(0, 2)] * 2


class TestObliviousPin:
    def test_exact_cost(self, topo):
        algo = ObliviousRouting(topo, MatchingConfig(b=1, alpha=4))
        algo.serve_all(as_requests(SCENARIO))
        assert algo.total_routing_cost == 2.0 * len(SCENARIO)
        assert algo.total_reconfiguration_cost == 0.0


class TestBMAPin:
    def test_exact_trace_of_behaviour(self, topo):
        """alpha=4, lengths 2: a pair saturates on its 2nd unmatched request."""
        algo = BMA(topo, MatchingConfig(b=1, alpha=4))
        algo.serve_all(as_requests(SCENARIO))
        # Hand-derived: (0,1) enters after request 2; requests 3-4 matched.
        # (0,2) pays 2+2, saturates at request 6, evicting (0,1), then
        # requests 7-8 are matched.  (3,4) enters after request 10.  (0,1)
        # pays 2+2 again and re-enters at request 12, evicting (0,2); (0,2)
        # pays 2+2 and re-enters at request 14, evicting the freshly added
        # (0,1) (usefulness 0).  In total 5 additions and 3 removals.
        assert algo.matching.additions == 5
        assert algo.matching.removals == 3
        assert algo.total_reconfiguration_cost == pytest.approx(8 * 4.0)
        assert algo.total_routing_cost == pytest.approx(2 * 10 + 1 * 4)
        assert (0, 2) in algo.matching and (3, 4) in algo.matching

    def test_deterministic_repetition(self, topo):
        costs = set()
        for _ in range(3):
            algo = BMA(topo, MatchingConfig(b=1, alpha=4))
            algo.serve_all(as_requests(SCENARIO))
            costs.add(algo.total_cost)
        assert len(costs) == 1


class TestGreedyPin:
    def test_exact_cost(self, topo):
        """Greedy (threshold alpha=4) adds a pair after it paid 4 and never evicts."""
        algo = GreedyBMA(topo, MatchingConfig(b=1, alpha=4))
        algo.serve_all(as_requests(SCENARIO))
        # (0,1) enters after 2 requests and stays; (0,2) can never enter
        # (node 0 full); (3,4) enters after 2 requests.
        assert set(algo.matching.edges) == {(0, 1), (3, 4)}
        assert algo.matching.additions == 2
        assert algo.matching.removals == 0
        # Routing: (0,1): 2+2 then 4 matched at 1 -> 8; (0,2): 6 unmatched at 2 -> 12;
        # (3,4): 2+2 then 0 more unmatched... requests 9-10 are its only ones: 2+2=4.
        assert algo.total_routing_cost == pytest.approx((2 + 2 + 1 + 1) + (6 * 2) + (2 + 2) + (1 + 1) * 0 + 2 * 1)


class TestStaticOfflinePin:
    def test_chooses_heaviest_pairs(self, topo):
        algo = StaticOfflineBMA(topo, MatchingConfig(b=1, alpha=4))
        algo.serve_all(as_requests(SCENARIO))
        # Aggregate savings: (0,1) and (0,2) each 6 requests, (3,4) 2 requests;
        # with b=1 only one of the node-0 pairs fits, plus (3,4).
        edges = set(algo.matching.edges)
        assert (3, 4) in edges
        assert len(edges & {(0, 1), (0, 2)}) == 1
        assert algo.matched_fraction == pytest.approx(8 / 14)


class TestRotorPin:
    def test_schedule_and_costs(self, topo):
        algo = RotorBMA(topo, MatchingConfig(b=1, alpha=4), period=5)
        algo.serve_all(as_requests(SCENARIO))
        # 14 requests with period 5 -> 2 rotations; each rotation swaps one
        # slot of 3 edges out and 3 edges in.
        assert algo.matching.additions == 6
        assert algo.matching.removals == 6
        assert algo.total_reconfiguration_cost == pytest.approx(12 * 4.0)
        assert len(algo.installed_slots) == 1


# --------------------------------------------------------------------------- #
# Golden-trace pins: every registered algorithm on a committed trace
# --------------------------------------------------------------------------- #

def _load_golden():
    with open(GOLDEN_DIR / "golden_trace.json") as fh:
        trace_data = json.load(fh)
    with open(GOLDEN_DIR / "golden_pins.json") as fh:
        pin_data = json.load(fh)
    trace = Trace.from_pairs(
        [tuple(p) for p in trace_data["pairs"]], trace_data["n_nodes"], name="golden"
    )
    return trace, pin_data


GOLDEN_TRACE, GOLDEN = _load_golden()
GOLDEN_ALGORITHMS = sorted(GOLDEN["pins"])
#: Algorithms whose serve path draws randomness; only these get a second,
#: counter-mode pin (deterministic algorithms cannot depend on the rng mode).
RANDOMIZED_GOLDEN = sorted(
    name for name in GOLDEN_ALGORITHMS
    if getattr(ALGORITHMS.resolve(name), "uses_rng", False)
)


def _run_golden(algorithm: str, backend: str, rng_mode=None):
    topology = LeafSpineTopology(n_racks=GOLDEN_TRACE.n_nodes)
    algo = ALGORITHMS.build(
        algorithm,
        topology,
        MatchingConfig(b=GOLDEN["b"], alpha=GOLDEN["alpha"], rng_mode=rng_mode),
        GOLDEN["algorithm_seed"],
        **GOLDEN["algorithm_params"].get(algorithm, {}),
    )
    result = run_simulation(
        algo,
        GOLDEN_TRACE,
        SimulationConfig(checkpoints=GOLDEN["checkpoints"], matching_backend=backend),
    )
    return {
        "total_routing_cost": result.total_routing_cost,
        "total_reconfiguration_cost": result.total_reconfiguration_cost,
        "matched_fraction": result.matched_fraction,
        "additions": algo.matching.additions,
        "removals": algo.matching.removals,
        "checkpoint_routing": result.series.routing_cost.tolist(),
    }


def test_golden_registry_is_complete():
    """A newly registered algorithm must get a golden pin (regenerate)."""
    canonical = sorted({ALGORITHMS.canonical(name) for name in ALGORITHMS.names()})
    assert canonical == GOLDEN_ALGORITHMS


@pytest.mark.parametrize("backend", ["reference", "fast", "numba"])
@pytest.mark.parametrize("algorithm", GOLDEN_ALGORITHMS)
def test_golden_trace_pins(algorithm, backend, monkeypatch):
    """Exact totals/counters/series on the committed trace, every kernel.

    The numba leg forces the pure-Python escape hatch so it pins the numba
    code path even on hosts without numba (compiled where available);
    under the nonumba CI tier (``REPRO_NO_NUMBA=1``) it instead pins the
    numba->fast fallback, which must hit the same goldens by definition.

    The ``pins`` section predates the counter rng: it is pinned under
    ``rng_mode="stateful"``, certifying that the legacy mode still
    reproduces every pre-counter result byte-identically.
    """
    if backend == "numba":
        monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
    observed = _run_golden(algorithm, backend, rng_mode="stateful")
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover
        GOLDEN["pins"][algorithm] = observed
        with open(GOLDEN_DIR / "golden_pins.json", "w") as fh:
            json.dump(GOLDEN, fh, indent=1)
        pytest.skip("regenerated golden pins")
    assert observed == GOLDEN["pins"][algorithm], (
        f"{algorithm} ({backend} backend) drifted from its golden pin; if the "
        "change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )


@pytest.mark.parametrize("backend", ["reference", "fast", "numba"])
@pytest.mark.parametrize("algorithm", RANDOMIZED_GOLDEN)
def test_golden_trace_pins_counter(algorithm, backend, monkeypatch):
    """Counter-mode (the default) pins for the randomized algorithms.

    Counter draws are keyed Philox functions of the request index, so they
    legitimately differ from the stateful sequence; this pins the new
    default so counter-mode drift fails just as loudly.
    """
    if backend == "numba":
        monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
    observed = _run_golden(algorithm, backend, rng_mode="counter")
    if os.environ.get("REPRO_REGEN_GOLDEN") == "1":  # pragma: no cover
        GOLDEN.setdefault("pins_counter", {})[algorithm] = observed
        with open(GOLDEN_DIR / "golden_pins.json", "w") as fh:
            json.dump(GOLDEN, fh, indent=1)
        pytest.skip("regenerated golden pins")
    assert observed == GOLDEN["pins_counter"][algorithm], (
        f"{algorithm} ({backend} backend, counter rng) drifted from its golden "
        "pin; if the change is intentional, regenerate with REPRO_REGEN_GOLDEN=1"
    )
