"""Degenerate ``serve_batch`` shapes, pinned on every backend and algorithm.

The compiled (numba) backend's scan kernels stop and resume at arbitrary
indices, so their edge cases — zero-length segments, segments of one
request, ``b = 1`` (every insertion can force an eviction), and runs with a
single checkpoint (one segment spanning the whole trace) — are pinned here
for *all* backends before any kernel change can regress them.  The numba
legs run uncompiled via ``REPRO_NUMBA_PUREPY`` where numba is missing, and
degrade to fallback coverage under the nonumba CI tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MatchingConfig, SimulationConfig
from repro.core.registry import ALGORITHMS
from repro.simulation import run_simulation
from repro.topology import LeafSpineTopology
from repro.traffic import zipf_pair_trace

BACKENDS = ("reference", "fast", "numba")

ALGORITHM_NAMES = sorted({ALGORITHMS.canonical(name) for name in ALGORITHMS.names()})

N_NODES = 8
N_REQUESTS = 120


@pytest.fixture(autouse=True)
def _enable_numba_leg(monkeypatch):
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")


@pytest.fixture
def topo():
    return LeafSpineTopology(n_racks=N_NODES)


@pytest.fixture
def trace():
    return zipf_pair_trace(n_nodes=N_NODES, n_requests=N_REQUESTS, seed=9)


def _build(name: str, topo, b: int = 3, seed: int = 5, backend: str = "fast"):
    params = {"solver": "greedy"} if name == "so-bma" else {}
    algo = ALGORITHMS.build(name, topo, MatchingConfig(b=b, alpha=4.0), seed, **params)
    algo.rebind_matching_backend(backend)
    return algo


def _state(algo):
    return (
        algo.total_routing_cost,
        algo.total_reconfiguration_cost,
        algo.requests_served,
        algo.matched_requests,
        sorted(algo.matching.edges),
        sorted(algo.matching.marked_edges),
        algo.matching.additions,
        algo.matching.removals,
    )


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_empty_segment_is_a_no_op(algorithm, backend, topo, trace):
    """A zero-length segment must change nothing — before or mid-run."""
    algo = _build(algorithm, topo, backend=backend)
    if algo.requires_full_trace:
        algo.fit(trace)
    # Some algorithms (rotor's schedule, so-bma's fitted solution) install a
    # matching before the first request; the invariant is *unchanged state*,
    # not pristine state.
    initial = _state(algo)
    assert initial[2] == 0  # no requests served yet
    algo.serve_batch(trace[0:0])
    assert _state(algo) == initial
    # Mid-run: serve a prefix, then an empty segment, then verify stability.
    algo.serve_batch(trace[0:40])
    mid = _state(algo)
    algo.serve_batch(trace[40:40])
    assert _state(algo) == mid


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_single_request_segments_match_sequential_serve(algorithm, backend, topo, trace):
    """All-singleton segmentation equals request-by-request serving."""
    short = trace[0:25]
    batched = _build(algorithm, topo, backend=backend)
    if batched.requires_full_trace:
        batched.fit(short)
    for i in range(len(short)):
        batched.serve_batch(short[i:i + 1])

    sequential = _build(algorithm, topo, backend=backend)
    if sequential.requires_full_trace:
        sequential.fit(list(short.requests()))
    for request in short.requests():
        sequential.serve(request)

    assert _state(batched) == _state(sequential), f"{algorithm} on {backend}"


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_b_equal_one_batched_matches_sequential(algorithm, backend, topo, trace):
    """b=1: every saturation can evict, the harshest pruning regime."""
    batched = _build(algorithm, topo, b=1, backend=backend)
    if batched.requires_full_trace:
        batched.fit(trace)
    batched.serve_batch(trace)

    sequential = _build(algorithm, topo, b=1, backend=backend)
    if sequential.requires_full_trace:
        sequential.fit(list(trace.requests()))
    for request in trace.requests():
        sequential.serve(request)

    assert _state(batched) == _state(sequential), f"{algorithm} on {backend}"


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_single_checkpoint_run_identical_across_backends(algorithm, topo, trace):
    """checkpoints=1 → one segment spanning the whole trace, every backend."""
    totals = {}
    for backend in BACKENDS:
        algo = _build(algorithm, topo, backend="fast")  # engine rebinds
        result = run_simulation(
            algo, trace, SimulationConfig(checkpoints=1, matching_backend=backend)
        )
        assert result.series.requests.tolist() == [N_REQUESTS]
        totals[backend] = (
            result.total_routing_cost,
            result.total_reconfiguration_cost,
            result.matched_fraction,
            result.series.routing_cost.tolist(),
        )
    assert totals["fast"] == totals["reference"], algorithm
    assert totals["numba"] == totals["reference"], algorithm


@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_one_request_trace_identical_across_backends(algorithm, topo):
    """A one-request trace: the series collapses to a single checkpoint."""
    tiny = zipf_pair_trace(n_nodes=N_NODES, n_requests=1, seed=2)
    totals = {}
    for backend in BACKENDS:
        algo = _build(algorithm, topo, backend="fast")
        result = run_simulation(
            algo, tiny, SimulationConfig(checkpoints=10, matching_backend=backend)
        )
        assert len(result.series.requests) == 1
        totals[backend] = (result.total_routing_cost, result.total_reconfiguration_cost)
    assert totals["fast"] == totals["reference"] == totals["numba"], algorithm
