"""Tests for the dynamic BMatching structure."""

import pytest

from repro.errors import DegreeConstraintError, MatchingError
from repro.matching import BMatching


class TestConstruction:
    def test_validation(self):
        with pytest.raises(MatchingError):
            BMatching(1, 1)
        with pytest.raises(MatchingError):
            BMatching(4, 0)

    def test_empty_initially(self):
        m = BMatching(4, 2)
        assert len(m) == 0
        assert m.edges == frozenset()
        assert m.degree(0) == 0


class TestAddRemove:
    def test_add_canonicalises(self):
        m = BMatching(4, 2)
        assert m.add(3, 1) == (1, 3)
        assert (1, 3) in m
        assert (3, 1) in m  # membership is order-insensitive

    def test_degree_tracking(self):
        m = BMatching(5, 2)
        m.add(0, 1)
        m.add(0, 2)
        assert m.degree(0) == 2
        assert m.degree(1) == 1
        assert m.edges_at(0) == frozenset({(0, 1), (0, 2)})

    def test_duplicate_add_rejected(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        with pytest.raises(MatchingError):
            m.add(1, 0)

    def test_degree_bound_enforced(self):
        m = BMatching(4, 1)
        m.add(0, 1)
        with pytest.raises(DegreeConstraintError):
            m.add(0, 2)

    def test_remove(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.remove(1, 0)
        assert len(m) == 0
        assert m.degree(0) == 0

    def test_remove_missing_rejected(self):
        m = BMatching(4, 2)
        with pytest.raises(MatchingError):
            m.remove(0, 1)

    def test_addition_and_removal_counters(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.add(2, 3)
        m.remove(0, 1)
        assert m.additions == 2
        assert m.removals == 1

    def test_out_of_range_node(self):
        m = BMatching(4, 2)
        with pytest.raises(MatchingError):
            m.add(0, 4)
        with pytest.raises(MatchingError):
            m.degree(9)

    def test_has_capacity(self):
        m = BMatching(4, 1)
        assert m.has_capacity(0, 1)
        m.add(0, 1)
        assert not m.has_capacity(0, 2)  # node 0 full
        assert not m.has_capacity(0, 1)  # already present
        assert m.has_capacity(2, 3)

    def test_clear(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.add(2, 3)
        m.clear()
        assert len(m) == 0
        assert m.removals == 2


class TestLazyRemoval:
    def test_mark_and_prune(self):
        m = BMatching(4, 1)
        m.add(0, 1)
        assert m.mark_for_removal(0, 1)
        assert m.is_marked(0, 1)
        removed = m.prune_to_capacity(0)
        assert removed == [(0, 1)]
        assert len(m) == 0

    def test_mark_missing_edge_is_noop(self):
        m = BMatching(4, 2)
        assert m.mark_for_removal(0, 1) is False

    def test_unmark(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.mark_for_removal(0, 1)
        assert m.unmark(0, 1) is True
        assert not m.is_marked(0, 1)
        assert m.unmark(0, 1) is False

    def test_prune_without_marked_edges_raises(self):
        m = BMatching(4, 1)
        m.add(0, 1)
        with pytest.raises(DegreeConstraintError):
            m.prune_to_capacity(0)

    def test_prune_noop_when_capacity_available(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.mark_for_removal(0, 1)
        assert m.prune_to_capacity(0) == []
        assert (0, 1) in m  # marked edges are kept while there is room

    def test_prune_removes_only_enough(self):
        m = BMatching(6, 2)
        m.add(0, 1)
        m.add(0, 2)
        m.mark_for_removal(0, 1)
        m.mark_for_removal(0, 2)
        removed = m.prune_to_capacity(0)
        assert len(removed) == 1
        assert m.degree(0) == 1

    def test_remove_clears_mark(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.mark_for_removal(0, 1)
        m.remove(0, 1)
        assert m.marked_edges == frozenset()


class TestCopy:
    def test_copy_is_independent(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.mark_for_removal(0, 1)
        clone = m.copy()
        clone.remove(0, 1)
        assert (0, 1) in m
        assert (0, 1) not in clone

    def test_copy_preserves_counters_and_marks(self):
        m = BMatching(4, 2)
        m.add(0, 1)
        m.add(2, 3)
        m.remove(2, 3)
        m.mark_for_removal(0, 1)
        clone = m.copy()
        assert clone.additions == m.additions
        assert clone.removals == m.removals
        assert clone.marked_edges == m.marked_edges
