"""Execution planning and scheduler backends: the plan → scheduler → results
plane contract (see :mod:`repro.exec`).

* :func:`build_execution_plan` canonicalizes mixed spec inputs, serves
  run-store hits before dispatch, aliases duplicate fingerprints within a
  plan, groups shared-workload specs into lockstep tasks, and pre-solves
  SO-BMA demand once in the parent.
* :func:`execute_plan` on the ``serial`` backend is the reference: results
  must be bit-identical to the legacy sequential paths, every computed
  result carries ``extra["scheduler_backend"]``/``["attempts"]``
  provenance, and ``on_error="collect"`` turns failures into
  :class:`RunFailure` records without discarding completed work.
* ``REPRO_WORKERS`` supplies worker-count defaults (explicit wins).

Pure-logic and serial-backend tests run everywhere; nothing here spawns a
pool or a subprocess (the subprocess-backed queue tier lives in
``tests/test_exec_queue.py`` under the ``sched`` marker).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError, WorkerExecutionError
from repro.exec import (
    RunFailure,
    build_execution_plan,
    execute_plan,
    resolve_backend_name,
    resolve_worker_count,
)
from repro.experiments import ExperimentSpec
from repro.matching import static_solver
from repro.simulation import RunSpec, run_specs_parallel
from repro.simulation.results import RunResult
from repro.simulation.runner import execute_experiment_spec
from repro.store import RunStore, fingerprint_spec

SEED = 2023


def _spec(name="rbma", seed=SEED, **traffic_overrides):
    params = {"n_nodes": 10, "n_requests": 200, **traffic_overrides}
    return ExperimentSpec(
        algorithm={"name": name, "b": 3, "alpha": 4.0},
        traffic={"name": "zipf", "params": params},
        simulation={"checkpoints": 4},
        seed=seed,
    )


def _so_bma_spec(seed=SEED):
    return ExperimentSpec(
        algorithm={"name": "so-bma", "b": 3, "alpha": 4.0},
        traffic={"name": "zipf", "params": {"n_nodes": 10, "n_requests": 200}},
        simulation={"checkpoints": 4},
        seed=seed,
    )


def _failing_spec():
    """Validates, then explodes inside the engine (positions past the trace)."""
    return ExperimentSpec(
        algorithm={"name": "rbma", "b": 3, "alpha": 4.0},
        traffic={"name": "zipf", "params": {"n_nodes": 10, "n_requests": 40}},
        simulation={"checkpoint_positions": [999]},
        seed=5,
    )


def _assert_series_identical(a, b):
    assert np.array_equal(a.series.requests, b.series.requests)
    assert np.array_equal(a.series.routing_cost, b.series.routing_cost)
    assert np.array_equal(a.series.reconfiguration_cost, b.series.reconfiguration_cost)
    assert np.array_equal(a.series.matched_fraction, b.series.matched_fraction)
    assert a.total_routing_cost == b.total_routing_cost


# --------------------------------------------------------------------------- #
# Plan construction
# --------------------------------------------------------------------------- #


class TestPlanConstruction:
    def test_mixed_inputs_canonicalize_and_group_by_shared_trace(self):
        legacy = RunSpec(
            algorithm="bma",
            workload="zipf",
            b=3,
            workload_kwargs={"n_nodes": 10, "n_requests": 200},
            seed=SEED,
        )
        specs = [_spec("rbma"), legacy, _spec("oblivious", seed=SEED + 1)]
        plan = build_execution_plan(specs, store=False)
        assert all(isinstance(s, ExperimentSpec) for s in plan.specs)
        # rbma and the legacy bma spec share (workload, params, seed); the
        # reseeded oblivious spec gets its own task.
        assert plan.describe() == {
            "specs": 3,
            "pending": 3,
            "cached": 0,
            "aliased": 0,
            "tasks": 2,
            "presolved": 0,
        }
        assert plan.tasks[0].indices == (0, 1)
        assert plan.tasks[1].indices == (2,)

    def test_unseeded_specs_never_share_a_task(self):
        specs = [_spec(seed=None), _spec(seed=None)]
        plan = build_execution_plan(specs, store=False)
        assert len(plan.tasks) == 2  # fresh entropy per run: sharing would correlate

    def test_task_payload_round_trips_through_json(self):
        plan = build_execution_plan([_spec("rbma"), _spec("bma")], store=False)
        from repro.exec import PlanTask
        import json

        payload = json.loads(json.dumps(plan.tasks[0].to_payload()))
        rebuilt = PlanTask.from_payload(payload)
        assert rebuilt.task_id == plan.tasks[0].task_id
        assert rebuilt.indices == plan.tasks[0].indices
        assert rebuilt.specs == plan.tasks[0].specs

    def test_on_error_mode_is_validated(self):
        with pytest.raises(ConfigurationError, match="on_error"):
            build_execution_plan([_spec()], store=False, on_error="ignore")


class TestStoreDedupe:
    def test_warm_entries_are_served_before_dispatch(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = _spec("rbma")
        [cold] = run_specs_parallel([spec], store=store)
        plan = build_execution_plan([spec, _spec("bma")], store=store)
        assert plan.describe()["cached"] == 1
        assert plan.describe()["pending"] == 1
        [hit, computed] = execute_plan(plan, backend="serial")
        _assert_series_identical(hit, cold)
        assert computed.algorithm == "bma"

    def test_duplicate_fingerprints_execute_once_and_alias(self, tmp_path):
        store = RunStore(tmp_path / "store")
        spec = _spec("rbma")
        plan = build_execution_plan([spec, spec, _spec("bma")], store=store)
        assert plan.describe()["aliased"] == 1
        assert plan.describe()["pending"] == 2
        results = execute_plan(plan, backend="serial")
        assert len(results) == 3
        _assert_series_identical(results[0], results[1])
        # One store entry per distinct fingerprint, not per input slot.
        assert store.contains(fingerprint_spec(spec))
        assert len(store.list_runs()) == 2


class TestPresolve:
    def test_so_bma_demand_is_solved_once_in_the_parent(self):
        static_solver.solver_cache_clear()
        specs = [_so_bma_spec(), _spec("rbma")]
        plan = build_execution_plan(specs, store=False)
        assert plan.describe()["presolved"] == 1
        after_plan = static_solver.solver_cache_info()
        assert after_plan["misses"] == 1  # the parent's single pre-solve
        results = execute_plan(plan, backend="serial")
        after_run = static_solver.solver_cache_info()
        # Execution re-used the pre-solved rounds: hits only, no new solve.
        assert after_run["misses"] == 1
        assert after_run["hits"] > after_plan["hits"]
        # And the result is bit-identical to a cold standalone execution.
        static_solver.solver_cache_clear()
        _assert_series_identical(results[0], _so_bma_spec().execute())

    def test_presolve_can_be_disabled(self):
        plan = build_execution_plan([_so_bma_spec()], store=False, presolve=False)
        assert plan.describe()["presolved"] == 0


# --------------------------------------------------------------------------- #
# Serial backend: reference semantics
# --------------------------------------------------------------------------- #


class TestSerialBackend:
    def test_serial_matches_legacy_sequential_execution(self):
        specs = [_spec(name) for name in ("rbma", "bma", "oblivious")]
        results = execute_plan(build_execution_plan(specs, store=False))
        for spec, result in zip(specs, results):
            _assert_series_identical(result, execute_experiment_spec(spec))

    def test_results_carry_scheduler_provenance(self):
        [result] = run_specs_parallel([_spec()], n_workers=1)
        assert result.extra["scheduler_backend"] == "serial"
        assert result.extra["attempts"] == 1

    def test_raise_mode_propagates_with_spec_context(self):
        with pytest.raises(WorkerExecutionError) as excinfo:
            run_specs_parallel([_spec(), _failing_spec()], n_workers=1)
        message = str(excinfo.value)
        assert "failing spec" in message
        assert '"seed": 5' in message

    def test_collect_mode_keeps_completed_work(self):
        ok = _spec("rbma")
        results = run_specs_parallel([ok, _failing_spec(), _spec("bma")],
                                     n_workers=1, on_error="collect")
        assert isinstance(results[0], RunResult)
        assert isinstance(results[2], RunResult)
        failure = results[1]
        assert isinstance(failure, RunFailure)
        assert failure.index == 1
        assert failure.error_type == "SimulationError"
        assert failure.scheduler_backend == "serial"
        assert failure.spec["seed"] == 5
        assert "checkpoint_positions reach 999" in failure.message
        assert failure.to_dict()["attempts"] == 1

    def test_streaming_specs_take_the_rich_path_and_stay_identical(self):
        bulk = _spec("rbma", n_requests=300)
        streamed = ExperimentSpec(
            algorithm={"name": "rbma", "b": 3, "alpha": 4.0},
            traffic={"name": "zipf",
                     "params": {"n_nodes": 10, "n_requests": 300},
                     "streaming": True, "chunk_size": 64},
            simulation={"checkpoints": 4},
            seed=SEED,
        )
        [a] = execute_plan(build_execution_plan([bulk], store=False))
        [b] = execute_plan(build_execution_plan([streamed], store=False))
        _assert_series_identical(a, b)


# --------------------------------------------------------------------------- #
# Worker-count and backend resolution
# --------------------------------------------------------------------------- #


class TestWorkerResolution:
    def test_explicit_count_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_worker_count(3) == 3
        assert resolve_worker_count(None) == 7

    def test_falsey_tokens_fall_back(self, monkeypatch):
        for token in ("", "0", "off", "none"):
            monkeypatch.setenv("REPRO_WORKERS", token)
            assert resolve_worker_count(None, fallback=2) == 2

    def test_invalid_environment_value_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_worker_count(None, fallback=1) == 1
        monkeypatch.setenv("REPRO_WORKERS", "-2")
        with pytest.warns(RuntimeWarning, match="REPRO_WORKERS"):
            assert resolve_worker_count(None, fallback=1) == 1

    def test_worker_count_must_be_positive(self):
        with pytest.raises(SimulationError, match="n_workers"):
            resolve_worker_count(0)

    def test_backend_defaults_follow_worker_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_backend_name(None, 1) == "serial"
        assert resolve_backend_name(None, None) == "serial"
        assert resolve_backend_name(None, 4) == "pool"
        assert resolve_backend_name("serial", 4) == "serial"

    def test_unknown_backend_suggests_a_name(self):
        with pytest.raises(ConfigurationError, match="serial"):
            resolve_backend_name("serail", 1)
