"""Tests for the deterministic BMA baseline."""

import pytest

from repro.config import MatchingConfig
from repro.core import BMA, ObliviousRouting
from repro.matching.validation import check_b_matching
from repro.traffic import zipf_pair_trace
from repro.types import Request


class TestSaturation:
    def test_pair_enters_after_paying_alpha(self, small_leafspine):
        # leaf-spine distances are 2; alpha=6 -> enters on the 3rd request.
        algo = BMA(small_leafspine, MatchingConfig(b=2, alpha=6))
        algo.serve(Request(0, 1))
        algo.serve(Request(0, 1))
        assert (0, 1) not in algo.matching
        assert algo.counter((0, 1)) == pytest.approx(4.0)
        algo.serve(Request(0, 1))
        assert (0, 1) in algo.matching
        assert algo.counter((0, 1)) == 0.0

    def test_matched_edge_accumulates_usefulness(self, small_leafspine):
        algo = BMA(small_leafspine, MatchingConfig(b=2, alpha=2))
        algo.serve(Request(0, 1))  # saturates immediately (2 >= 2)
        assert (0, 1) in algo.matching
        algo.serve(Request(0, 1))
        algo.serve(Request(0, 1))
        assert algo.usefulness((0, 1)) == 2

    def test_eviction_prefers_least_useful(self, small_leafspine):
        algo = BMA(small_leafspine, MatchingConfig(b=1, alpha=2))
        algo.serve(Request(0, 1))            # matched
        for _ in range(5):
            algo.serve(Request(0, 1))        # very useful
        algo.serve(Request(0, 2))            # matched, never used afterwards
        assert (0, 2) in algo.matching and (0, 1) not in algo.matching
        # Node 0 is full; a third pair saturating must evict the less useful (0,2).
        algo.serve(Request(1, 0))            # rebuild usefulness for (0,1)? it's gone
        algo.serve(Request(0, 3))
        assert (0, 3) in algo.matching
        assert (0, 2) not in algo.matching

    def test_counters_reset_on_eviction(self, small_leafspine):
        algo = BMA(small_leafspine, MatchingConfig(b=1, alpha=4))
        # Pair (0,1) saturates (2 requests of length 2).
        algo.serve(Request(0, 1))
        algo.serve(Request(0, 1))
        assert (0, 1) in algo.matching
        # Pair (0,2) accrues one request (counter 2), pair (0,3) saturates next,
        # evicting (0,1) and resetting (0,2)'s counter.
        algo.serve(Request(0, 2))
        assert algo.counter((0, 2)) == pytest.approx(2.0)
        algo.serve(Request(0, 3))
        algo.serve(Request(0, 3))
        assert (0, 3) in algo.matching
        assert algo.counter((0, 2)) == 0.0

    def test_degree_bound_maintained(self, small_fattree, fb_like_trace):
        algo = BMA(small_fattree, MatchingConfig(b=3, alpha=8))
        for request in fb_like_trace.requests():
            algo.serve(request)
            check_b_matching(algo.matching.edges, small_fattree.n_racks, 3)

    def test_deterministic(self, small_fattree, fb_like_trace):
        costs = []
        for _ in range(2):
            algo = BMA(small_fattree, MatchingConfig(b=3, alpha=8))
            algo.serve_all(list(fb_like_trace.requests()))
            costs.append(algo.total_cost)
        assert costs[0] == costs[1]

    def test_beats_oblivious_on_skewed_traffic(self, small_fattree):
        trace = zipf_pair_trace(n_nodes=16, n_requests=3000, exponent=1.4,
                                repeat_probability=0.5, seed=2)
        config = MatchingConfig(b=4, alpha=8)
        bma = BMA(small_fattree, config)
        oblivious = ObliviousRouting(small_fattree, config)
        bma_cost = sum(bma.serve(r).routing_cost for r in trace.requests())
        obl_cost = sum(oblivious.serve(r).routing_cost for r in trace.requests())
        assert bma_cost < 0.85 * obl_cost

    def test_reset(self, small_leafspine):
        algo = BMA(small_leafspine, MatchingConfig(b=2, alpha=4))
        algo.serve(Request(0, 1))
        algo.reset()
        assert algo.counter((0, 1)) == 0.0
        assert len(algo.matching) == 0
        algo.serve(Request(0, 1))
        assert algo.requests_served == 1
