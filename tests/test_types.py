"""Tests for repro.types: pair canonicalisation and Request objects."""

import pytest

from repro.types import Request, all_pairs, as_requests, canonical_pair, pair_index, pairs_of


class TestCanonicalPair:
    def test_orders_endpoints(self):
        assert canonical_pair(5, 2) == (2, 5)

    def test_already_ordered(self):
        assert canonical_pair(1, 7) == (1, 7)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            canonical_pair(3, 3)

    def test_symmetric(self):
        assert canonical_pair(4, 9) == canonical_pair(9, 4)


class TestPairIndex:
    def test_enumerates_all_pairs_uniquely(self):
        n = 7
        indices = {pair_index(u, v, n) for u, v in all_pairs(n)}
        assert indices == set(range(n * (n - 1) // 2))

    def test_order_independent(self):
        assert pair_index(2, 5, 8) == pair_index(5, 2, 8)

    def test_first_and_last(self):
        n = 5
        assert pair_index(0, 1, n) == 0
        assert pair_index(n - 2, n - 1, n) == n * (n - 1) // 2 - 1

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pair_index(0, 9, 5)


class TestPairsOf:
    def test_yields_all_incident_pairs(self):
        pairs = list(pairs_of(2, 5))
        assert len(pairs) == 4
        assert all(2 in p for p in pairs)
        assert all(p[0] < p[1] for p in pairs)

    def test_all_pairs_count(self):
        assert len(list(all_pairs(6))) == 15


class TestRequest:
    def test_basic_fields(self):
        r = Request(3, 1)
        assert r.src == 3 and r.dst == 1
        assert r.size == 1.0

    def test_pair_is_canonical(self):
        assert Request(3, 1).pair() == (1, 3)

    def test_reversed_keeps_pair(self):
        r = Request(2, 6, size=2.0, timestamp=5.0)
        rev = r.reversed()
        assert rev.src == 6 and rev.dst == 2
        assert rev.pair() == r.pair()
        assert rev.size == r.size and rev.timestamp == r.timestamp

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Request(4, 4)

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            Request(0, 1, size=0.0)

    def test_frozen(self):
        r = Request(0, 1)
        with pytest.raises(AttributeError):
            r.src = 2  # type: ignore[misc]

    def test_as_requests(self):
        reqs = as_requests([(0, 1), (2, 3)])
        assert [((r.src, r.dst)) for r in reqs] == [(0, 1), (2, 3)]
