"""Tests for the prediction-robust combiner (HybridBMA)."""

import pytest

from repro.config import MatchingConfig
from repro.core import HybridBMA, ObliviousRouting, RBMA, make_algorithm
from repro.errors import ConfigurationError
from repro.matching.validation import check_b_matching
from repro.traffic import hotspot_trace, zipf_pair_trace
from repro.types import Request


class TestHybridBMA:
    def test_registered(self, small_leafspine):
        algo = make_algorithm("hybrid", small_leafspine, MatchingConfig(b=2, alpha=4), rng=0)
        assert isinstance(algo, HybridBMA)

    def test_starts_following_robust_expert(self, small_leafspine):
        algo = HybridBMA(small_leafspine, MatchingConfig(b=2, alpha=4), rng=0)
        assert algo.following == "rbma"
        assert algo.switches == 0

    def test_matching_mirrors_followed_expert(self, small_leafspine):
        algo = HybridBMA(small_leafspine, MatchingConfig(b=2, alpha=2), rng=0, period=50)
        for i in range(100):
            algo.serve(Request(i % 5, (i + 1) % 5))
        followed = algo._robust if algo.following == "rbma" else algo._predictive
        assert set(algo.matching.edges) == set(followed.matching.edges)

    def test_degree_bound_maintained(self, small_fattree):
        trace = zipf_pair_trace(n_nodes=16, n_requests=1500, exponent=1.3,
                                repeat_probability=0.4, seed=2)
        algo = HybridBMA(small_fattree, MatchingConfig(b=2, alpha=6), rng=1, period=100)
        for request in trace.requests():
            algo.serve(request)
            check_b_matching(algo.matching.edges, small_fattree.n_racks, 2)

    def test_cost_accounting_consistent(self, small_leafspine):
        algo = HybridBMA(small_leafspine, MatchingConfig(b=2, alpha=4), rng=0)
        routing = reconf = 0.0
        for i in range(200):
            outcome = algo.serve(Request(i % 6, (i + 3) % 6))
            routing += outcome.routing_cost
            reconf += outcome.reconfiguration_cost
        assert algo.total_routing_cost == pytest.approx(routing)
        assert algo.total_reconfiguration_cost == pytest.approx(reconf)
        changes = algo.matching.additions + algo.matching.removals
        assert reconf == pytest.approx(changes * 4)

    def test_competitive_with_experts_on_skewed_traffic(self, small_fattree):
        trace = hotspot_trace(n_nodes=16, n_requests=3000, n_hot_pairs=4,
                              hot_fraction=0.9, seed=5)
        config = MatchingConfig(b=2, alpha=8)
        hybrid = HybridBMA(small_fattree, config, rng=0, period=200)
        rbma = RBMA(small_fattree, config, rng=0)
        oblivious = ObliviousRouting(small_fattree, config)
        hybrid_cost = sum(hybrid.serve(r).total_cost for r in trace.requests())
        rbma_cost = sum(rbma.serve(r).total_cost for r in trace.requests())
        oblivious_cost = sum(oblivious.serve(r).total_cost for r in trace.requests())
        # Robustness: never much worse than the safe expert, and clearly
        # better than doing nothing.
        assert hybrid_cost <= 3.0 * rbma_cost
        assert hybrid_cost < oblivious_cost

    def test_expert_costs_exposed(self, small_leafspine):
        algo = HybridBMA(small_leafspine, MatchingConfig(b=2, alpha=4), rng=0)
        for _ in range(20):
            algo.serve(Request(0, 1))
        robust_cost, predictive_cost = algo.expert_costs
        assert robust_cost > 0 and predictive_cost > 0

    def test_switch_factor_validation(self, small_leafspine):
        with pytest.raises(ConfigurationError):
            HybridBMA(small_leafspine, MatchingConfig(b=2, alpha=4), switch_factor=0.5)

    def test_reset(self, small_leafspine):
        algo = HybridBMA(small_leafspine, MatchingConfig(b=2, alpha=4), rng=0)
        for _ in range(30):
            algo.serve(Request(0, 1))
        algo.reset()
        assert algo.total_cost == 0.0
        assert algo.switches == 0
        assert algo.following == "rbma"
        assert len(algo.matching) == 0
