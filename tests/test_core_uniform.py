"""Tests for the uniform-case machinery (Theorem 2 reduction)."""

import numpy as np
import pytest

from repro.config import MatchingConfig
from repro.core import UniformBMatching
from repro.core.uniform import PerNodePagingMatcher
from repro.matching import BMatching
from repro.matching.validation import check_b_matching
from repro.paging.registry import make_paging_factory
from repro.types import Request


class TestPerNodePagingMatcher:
    def _matcher(self, n=6, b=2, policy="marking", seed=0):
        matching = BMatching(n, b)
        return PerNodePagingMatcher(matching, make_paging_factory(policy), rng=seed)

    def test_requested_pair_becomes_matched(self):
        m = self._matcher()
        added, removed = m.process((0, 1))
        assert added == ((0, 1),)
        assert removed == ()
        assert (0, 1) in m.matching

    def test_repeated_pair_is_stable(self):
        m = self._matcher()
        m.process((0, 1))
        added, removed = m.process((0, 1))
        assert added == () and removed == ()

    def test_pagers_created_lazily(self):
        m = self._matcher()
        assert m.active_nodes == frozenset()
        m.process((2, 4))
        assert m.active_nodes == {2, 4}

    def test_invariant_unmarked_edges_cached_at_both_endpoints(self):
        rng = np.random.default_rng(1)
        m = self._matcher(n=8, b=2, seed=3)
        for _ in range(300):
            u, v = rng.choice(8, size=2, replace=False)
            m.process((min(u, v), max(u, v)))
            for edge in m.matching.edges:
                if edge in m.matching.marked_edges:
                    continue
                for endpoint in edge:
                    assert edge in m.pager(endpoint)

    def test_degree_bound_never_violated(self):
        rng = np.random.default_rng(2)
        for policy in ("marking", "lru", "fifo", "lfu", "random"):
            m = self._matcher(n=6, b=2, policy=policy, seed=5)
            for _ in range(400):
                u, v = rng.choice(6, size=2, replace=False)
                m.process((min(u, v), max(u, v)))
                check_b_matching(m.matching.edges, 6, 2)

    def test_eviction_marks_edge_for_removal(self):
        # b=1: matching 0-1, then requesting 0-2 evicts 0-1 from node 0's cache.
        m = self._matcher(n=4, b=1)
        m.process((0, 1))
        added, removed = m.process((0, 2))
        assert (0, 2) in m.matching
        assert (0, 1) not in m.matching  # pruned to make room at node 0
        assert ((0, 1)) in removed

    def test_reset_clears_pagers(self):
        m = self._matcher()
        m.process((0, 1))
        m.reset()
        assert m.active_nodes == frozenset()


class TestUniformBMatching:
    def test_runs_and_respects_bounds(self, small_leafspine, uniform_trace):
        algo = UniformBMatching(small_leafspine, MatchingConfig(b=2, alpha=1), rng=0)
        algo.serve_all(list(uniform_trace.requests()))
        check_b_matching(algo.matching.edges, small_leafspine.n_racks, 2)
        assert algo.requests_served == len(uniform_trace)

    def test_every_request_forwarded(self, small_leafspine):
        algo = UniformBMatching(small_leafspine, MatchingConfig(b=2, alpha=1), rng=0)
        algo.serve(Request(0, 1))
        assert (0, 1) in algo.matching

    def test_repeated_working_set_is_all_hits(self, small_leafspine):
        algo = UniformBMatching(small_leafspine, MatchingConfig(b=2, alpha=1), rng=0)
        pairs = [(0, 1), (2, 3), (4, 5)]
        for _ in range(20):
            for u, v in pairs:
                algo.serve(Request(u, v))
        # After the first pass everything fits (degree 1 per node <= b=2).
        assert algo.matched_fraction > 0.9

    def test_alternative_paging_policy(self, small_leafspine, uniform_trace):
        algo = UniformBMatching(
            small_leafspine, MatchingConfig(b=2, alpha=1), rng=0, paging_policy="lru"
        )
        algo.serve_all(list(uniform_trace.requests()))
        check_b_matching(algo.matching.edges, small_leafspine.n_racks, 2)
