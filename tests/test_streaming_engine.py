"""Streaming engine differentials: streamed replay must be bit-identical.

The streaming drive loop (:class:`repro.simulation.engine.StreamingSimulation`)
promises results **bit-identical** to materialized replay no matter where the
chunk boundaries fall.  This tier certifies that promise:

* a differential matrix over every registered algorithm x matching backend x
  chunk size (including sizes that straddle checkpoint positions) on the
  committed golden trace;
* the golden pins themselves replayed under streaming;
* checkpoint planning for unknown-length streams (tail flush, explicit
  overrides that outrun the stream);
* drive-loop misuse (out-of-order segments, double finish, offline
  algorithms, over-delivery);
* the bounded-memory guarantee, demonstrated on a generator-backed stream
  far larger than any single segment;
* the runner integration (``execute_experiment_spec`` /
  ``compare_on_shared_trace`` with ``traffic.streaming``).
"""

import json
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.config import MatchingConfig, SimulationConfig
from repro.core.registry import ALGORITHMS
from repro.errors import SimulationError
from repro.experiments.specs import ExperimentSpec
from repro.simulation import run_simulation
from repro.simulation.engine import StreamingSimulation
from repro.simulation.runner import ExperimentRunner, execute_experiment_spec
from repro.topology import LeafSpineTopology
from repro.traffic import make_workload_stream
from repro.traffic.base import Trace
from repro.traffic.stream import TraceStream

pytestmark = pytest.mark.stream

GOLDEN_DIR = Path(__file__).resolve().parent / "data" / "golden"


def _load_golden():
    with open(GOLDEN_DIR / "golden_trace.json") as fh:
        trace_data = json.load(fh)
    with open(GOLDEN_DIR / "golden_pins.json") as fh:
        pin_data = json.load(fh)
    trace = Trace.from_pairs(
        [tuple(p) for p in trace_data["pairs"]], trace_data["n_nodes"], name="golden"
    )
    return trace, pin_data


GOLDEN_TRACE, GOLDEN = _load_golden()
GOLDEN_ALGORITHMS = sorted(GOLDEN["pins"])
RANDOMIZED_GOLDEN = sorted(
    name for name in GOLDEN_ALGORITHMS
    if getattr(ALGORITHMS.resolve(name), "uses_rng", False)
)

#: Chunk sizes chosen to straddle the golden run's checkpoint positions:
#: 1 splits at every request, 7 and 173 land mid-interval around every
#: checkpoint, 799 forces a 1-request tail, 800/4096 cover the
#: exactly-one-segment and bigger-than-trace cases.
CHUNK_SIZES = (7, 173, 799, 4096)


def _build_golden_algorithm(algorithm: str, rng_mode=None):
    topology = LeafSpineTopology(n_racks=GOLDEN_TRACE.n_nodes)
    return ALGORITHMS.build(
        algorithm,
        topology,
        MatchingConfig(b=GOLDEN["b"], alpha=GOLDEN["alpha"], rng_mode=rng_mode),
        GOLDEN["algorithm_seed"],
        **GOLDEN["algorithm_params"].get(algorithm, {}),
    )


def _golden_config(backend: str) -> SimulationConfig:
    return SimulationConfig(checkpoints=GOLDEN["checkpoints"], matching_backend=backend)


def assert_bit_identical(streamed, materialized):
    """Every deterministic field of two RunResults must match exactly."""
    assert streamed.algorithm == materialized.algorithm
    assert streamed.n_requests == materialized.n_requests
    assert streamed.total_routing_cost == materialized.total_routing_cost
    assert streamed.total_reconfiguration_cost == materialized.total_reconfiguration_cost
    assert streamed.matched_fraction == materialized.matched_fraction
    assert np.array_equal(streamed.series.requests, materialized.series.requests)
    assert np.array_equal(streamed.series.routing_cost, materialized.series.routing_cost)
    assert np.array_equal(
        streamed.series.reconfiguration_cost, materialized.series.reconfiguration_cost
    )
    assert np.array_equal(
        streamed.series.matched_fraction, materialized.series.matched_fraction
    )
    assert streamed.extra.get("matching_kernel") == materialized.extra.get(
        "matching_kernel"
    )


# --------------------------------------------------------------------------- #
# Differential matrix: every algorithm x backend x chunk size
# --------------------------------------------------------------------------- #

_MATERIALIZED_CACHE: dict = {}


def _materialized_golden(algorithm: str, backend: str):
    key = (algorithm, backend)
    if key not in _MATERIALIZED_CACHE:
        algo = _build_golden_algorithm(algorithm)
        _MATERIALIZED_CACHE[key] = run_simulation(
            algo, GOLDEN_TRACE, _golden_config(backend)
        )
    return _MATERIALIZED_CACHE[key]


@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("backend", ["reference", "fast"])
@pytest.mark.parametrize("algorithm", GOLDEN_ALGORITHMS)
def test_streaming_differential_matrix(algorithm, backend, chunk_size):
    """Streamed replay == materialized replay for every registered algorithm."""
    materialized = _materialized_golden(algorithm, backend)
    stream = TraceStream.from_trace(GOLDEN_TRACE, chunk_size=chunk_size)
    streamed = run_simulation(
        _build_golden_algorithm(algorithm), stream, _golden_config(backend)
    )
    assert_bit_identical(streamed, materialized)


@pytest.mark.parametrize("algorithm", GOLDEN_ALGORITHMS)
def test_streaming_differential_numba_kernel(algorithm, monkeypatch):
    """The numba backend's drive path streams bit-identically too.

    REPRO_NUMBA_PUREPY forces the pure-Python escape hatch so the numba code
    path is exercised even on hosts without numba (compiled where available).
    """
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
    materialized = run_simulation(
        _build_golden_algorithm(algorithm), GOLDEN_TRACE, _golden_config("numba")
    )
    stream = TraceStream.from_trace(GOLDEN_TRACE, chunk_size=173)
    streamed = run_simulation(
        _build_golden_algorithm(algorithm), stream, _golden_config("numba")
    )
    assert_bit_identical(streamed, materialized)


def _streamed_pin(algorithm, rng_mode):
    algo = _build_golden_algorithm(algorithm, rng_mode=rng_mode)
    stream = TraceStream.from_trace(GOLDEN_TRACE, chunk_size=173)
    result = run_simulation(algo, stream, _golden_config("fast"))
    return {
        "total_routing_cost": result.total_routing_cost,
        "total_reconfiguration_cost": result.total_reconfiguration_cost,
        "matched_fraction": result.matched_fraction,
        "additions": algo.matching.additions,
        "removals": algo.matching.removals,
        "checkpoint_routing": result.series.routing_cost.tolist(),
    }


@pytest.mark.parametrize("algorithm", GOLDEN_ALGORITHMS)
def test_golden_pins_hold_under_streaming(algorithm):
    """The committed golden pins are reproduced exactly from a stream.

    The ``pins`` section predates the counter rng, so it is replayed under
    ``rng_mode="stateful"`` (the mode that produced it).
    """
    assert _streamed_pin(algorithm, "stateful") == GOLDEN["pins"][algorithm]


@pytest.mark.parametrize("algorithm", RANDOMIZED_GOLDEN)
def test_counter_golden_pins_hold_under_streaming(algorithm):
    """The counter-mode pins are reproduced exactly from a stream too."""
    assert _streamed_pin(algorithm, "counter") == GOLDEN["pins_counter"][algorithm]


@pytest.mark.parametrize("rng_mode", ["stateful", "counter"])
@pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
@pytest.mark.parametrize("algorithm", RANDOMIZED_GOLDEN)
def test_streaming_randomized_rng_mode_differential(algorithm, rng_mode, chunk_size):
    """Randomized replay is chunk-invariant in *both* rng modes.

    In counter mode this holds with zero generator-fork bookkeeping: every
    eviction draw is a pure function of (seed, stream, request index, draw
    index), so where the segment boundaries fall cannot matter.
    """
    materialized = run_simulation(
        _build_golden_algorithm(algorithm, rng_mode=rng_mode),
        GOLDEN_TRACE, _golden_config("fast"),
    )
    streamed = run_simulation(
        _build_golden_algorithm(algorithm, rng_mode=rng_mode),
        TraceStream.from_trace(GOLDEN_TRACE, chunk_size=chunk_size),
        _golden_config("fast"),
    )
    assert_bit_identical(streamed, materialized)


def test_validation_observer_streams_identically():
    """validate=True (reference-forcing observer) keeps streamed == materialized."""
    materialized = run_simulation(
        _build_golden_algorithm("rbma"), GOLDEN_TRACE, _golden_config("fast"),
        validate=True,
    )
    streamed = run_simulation(
        _build_golden_algorithm("rbma"),
        TraceStream.from_trace(GOLDEN_TRACE, chunk_size=97),
        _golden_config("fast"),
        validate=True,
    )
    assert_bit_identical(streamed, materialized)


def test_generator_backed_stream_matches_materialized_run():
    """A truly chunked generator stream replays identically to the bulk trace."""
    kwargs = dict(n_nodes=12, n_requests=900, seed=23, exponent=1.4)
    from repro.traffic import make_workload

    trace = make_workload("zipf", **kwargs)
    stream = make_workload_stream("zipf", chunk_size=128, **kwargs)
    config = SimulationConfig(checkpoints=6, matching_backend="fast")
    materialized = run_simulation(_build_small_algo(12), trace, config)
    streamed = run_simulation(_build_small_algo(12), stream, config)
    assert_bit_identical(streamed, materialized)


def _build_small_algo(n_racks: int, name: str = "rbma"):
    topology = LeafSpineTopology(n_racks=n_racks)
    return ALGORITHMS.build(name, topology, MatchingConfig(b=2, alpha=4.0), 5)


# --------------------------------------------------------------------------- #
# Checkpoint planning for unknown-length streams
# --------------------------------------------------------------------------- #
class TestUnknownLengthCheckpoints:
    def _segments(self, n_nodes=8, sizes=(20, 30, 13)):
        rng = np.random.default_rng(3)
        offset = 0
        out = []
        for size in sizes:
            pairs = rng.integers(0, n_nodes, size=(size, 2))
            pairs[:, 1] = (pairs[:, 0] + 1 + pairs[:, 1] % (n_nodes - 1)) % n_nodes
            seg = Trace(
                pairs[:, 0].astype(np.int32), pairs[:, 1].astype(np.int32),
                Trace.from_pairs([(0, 1)], n_nodes).metadata,
            )
            out.append(seg)
            offset += size
        return out

    def test_tail_flush_records_single_checkpoint(self):
        segments = self._segments()
        n = sum(len(s) for s in segments)
        stream = TraceStream(segments, segments[0].metadata, n_requests=None)
        result = run_simulation(
            _build_small_algo(8), stream, SimulationConfig(checkpoints=10)
        )
        # Length was unknown: even spacing is impossible, so exactly one
        # checkpoint is recorded at exhaustion.
        assert result.n_requests == n
        assert result.series.requests.tolist() == [n]
        assert result.series.routing_cost[-1] == result.total_routing_cost

    def test_explicit_positions_survive_unknown_length(self):
        segments = self._segments()
        stream = TraceStream(segments, segments[0].metadata, n_requests=None)
        config = SimulationConfig(checkpoint_positions=(10, 45, 63))
        result = run_simulation(_build_small_algo(8), stream, config)
        assert result.series.requests.tolist() == [10, 45, 63]

    def test_explicit_positions_outrunning_stream_fail(self):
        segments = self._segments()
        stream = TraceStream(segments, segments[0].metadata, n_requests=None)
        config = SimulationConfig(checkpoint_positions=(10, 500))
        with pytest.raises(SimulationError, match=r"stream delivered only"):
            run_simulation(_build_small_algo(8), stream, config)


# --------------------------------------------------------------------------- #
# Drive-loop misuse
# --------------------------------------------------------------------------- #
class TestStreamingSimulationMisuse:
    def _trace(self, n=40, n_nodes=8):
        rng = np.random.default_rng(7)
        pairs = [(int(a), int((a + 1 + b) % n_nodes)) for a, b in
                 zip(rng.integers(0, n_nodes, n), rng.integers(0, n_nodes - 1, n))]
        return Trace.from_pairs(pairs, n_nodes)

    def test_out_of_order_segment_rejected(self):
        trace = self._trace()
        drive = StreamingSimulation(_build_small_algo(8), trace.metadata)
        drive.feed(trace[:10])
        with pytest.raises(SimulationError, match="feed contiguous segments in order"):
            drive.feed(trace[20:30])

    def test_double_finish_rejected(self):
        trace = self._trace()
        drive = StreamingSimulation(_build_small_algo(8), trace.metadata)
        drive.feed(trace[:])
        drive.finish()
        with pytest.raises(SimulationError, match="already called"):
            drive.finish()

    def test_feed_after_finish_rejected(self):
        trace = self._trace()
        drive = StreamingSimulation(_build_small_algo(8), trace.metadata)
        drive.feed(trace[:])
        drive.finish()
        with pytest.raises(SimulationError, match="already called"):
            drive.feed(trace[:10].with_offset(40))

    def test_empty_stream_rejected(self):
        trace = self._trace()
        drive = StreamingSimulation(_build_small_algo(8), trace.metadata)
        with pytest.raises(SimulationError, match="empty trace"):
            drive.finish()

    def test_overdelivery_rejected(self):
        trace = self._trace()
        drive = StreamingSimulation(_build_small_algo(8), trace.metadata, n_requests=30)
        with pytest.raises(SimulationError, match="delivered at least 40"):
            drive.feed(trace[:])

    def test_underdelivery_rejected(self):
        trace = self._trace()
        drive = StreamingSimulation(_build_small_algo(8), trace.metadata, n_requests=60)
        drive.feed(trace[:])
        with pytest.raises(SimulationError, match="declared 60 requests but delivered 40"):
            drive.finish()

    def test_offline_algorithm_rejected(self):
        trace = self._trace()
        topology = LeafSpineTopology(n_racks=8)
        offline = ALGORITHMS.build(
            "so-bma", topology, MatchingConfig(b=2, alpha=4.0), 5
        )
        assert offline.requires_full_trace
        with pytest.raises(SimulationError, match="requires the full trace"):
            StreamingSimulation(offline, trace.metadata)

    def test_run_simulation_materializes_for_offline_algorithms(self):
        """run_simulation transparently materializes streams for offline fits."""
        trace = self._trace()
        topology = LeafSpineTopology(n_racks=8)
        config = SimulationConfig(checkpoints=4)
        materialized = run_simulation(
            ALGORITHMS.build("so-bma", topology, MatchingConfig(b=2, alpha=4.0), 5),
            trace, config,
        )
        streamed = run_simulation(
            ALGORITHMS.build("so-bma", topology, MatchingConfig(b=2, alpha=4.0), 5),
            TraceStream.from_trace(trace, chunk_size=7), config,
        )
        assert_bit_identical(streamed, materialized)


# --------------------------------------------------------------------------- #
# Bounded memory
# --------------------------------------------------------------------------- #
def test_streaming_memory_is_bounded_by_chunk_size():
    """Replaying a generator-backed stream never holds the full trace.

    The stream is far larger than any single segment; the drive's peak
    traced allocation must stay well below the materialized trace's array
    footprint (which the materialized path cannot avoid).
    """
    n_requests, chunk_size = 60_000, 1_024
    kwargs = dict(n_nodes=16, n_requests=n_requests, seed=9)
    config = SimulationConfig(checkpoints=5, matching_backend="fast")

    stream = make_workload_stream("uniform", chunk_size=chunk_size, **kwargs)
    algo = _build_small_algo(16, "greedy")
    tracemalloc.start()
    tracemalloc.reset_peak()
    run_simulation(algo, stream, config)
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    # src+dst int32 arrays alone; the materialized path additionally holds
    # per-batch views and float64 timestamps on top of this floor.
    full_trace_bytes = n_requests * 2 * 4
    assert stream_peak < full_trace_bytes / 2, (
        f"streaming drive peaked at {stream_peak} traced bytes, expected well "
        f"below the {full_trace_bytes}-byte materialized trace footprint"
    )


# --------------------------------------------------------------------------- #
# Runner integration
# --------------------------------------------------------------------------- #
def _spec(algorithm="rbma", streaming=False, chunk_size=None, seed=13):
    return ExperimentSpec(
        algorithm={"name": algorithm, "b": 2, "alpha": 4.0},
        traffic={"name": "zipf",
                 "params": {"n_nodes": 12, "n_requests": 600, "exponent": 1.3},
                 "streaming": streaming, "chunk_size": chunk_size},
        topology={"name": "leaf-spine", "params": {"n_racks": 12}},
        simulation={"checkpoints": 5},
        seed=seed,
    )


class TestRunnerStreaming:
    def test_execute_experiment_spec_streaming_matches_materialized(self):
        materialized = execute_experiment_spec(_spec(), store=False)
        streamed = execute_experiment_spec(
            _spec(streaming=True, chunk_size=128), store=False
        )
        assert_bit_identical(streamed, materialized)

    def test_streaming_spec_shares_store_fingerprint(self):
        """Streamed and materialized runs are the same store cell."""
        spec = _spec()
        assert spec.canonical_dict() == _spec(
            streaming=True, chunk_size=128
        ).canonical_dict()

    def test_compare_on_shared_trace_streaming_matches_materialized(self):
        algorithms = ["rbma", "greedy", "so-bma"]
        runner = ExperimentRunner(repetitions=2, base_seed=7, store=False)
        materialized = runner.compare_on_shared_trace(
            [_spec(a) for a in algorithms]
        )
        streamed = runner.compare_on_shared_trace(
            [_spec(a, streaming=True, chunk_size=150) for a in algorithms]
        )
        assert set(streamed) == set(materialized)
        for key, agg in materialized.items():
            other = streamed[key]
            assert other.routing_cost_mean == agg.routing_cost_mean
            assert other.matched_fraction_mean == agg.matched_fraction_mean
            assert np.array_equal(other.series.requests, agg.series.requests)
            assert np.array_equal(other.series.routing_cost, agg.series.routing_cost)
