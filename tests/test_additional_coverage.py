"""Additional cross-cutting tests covering defaults and less-travelled paths."""

import numpy as np
import pytest

from repro.config import MatchingConfig, SweepConfig
from repro.core import RBMA, make_algorithm
from repro.simulation import RunSpec, run_sweep
from repro.simulation.runner import execute_run_spec
from repro.topology import FatTreeTopology, StarTopology
from repro.traffic import database_trace, hadoop_trace, web_service_trace
from repro.types import Request


class TestScaleInvariantTraceDefaults:
    """The Facebook generators derive temporal parameters from the trace length."""

    def test_database_drift_scales_with_length(self):
        short = database_trace(n_nodes=20, n_requests=2_000, seed=0)
        long = database_trace(n_nodes=20, n_requests=8_000, seed=0)
        assert short.metadata.params["drift_interval"] * 3 <= long.metadata.params["drift_interval"] * 4
        assert short.metadata.params["drift_interval"] >= 100

    def test_web_drift_default_recorded(self):
        trace = web_service_trace(n_nodes=20, n_requests=5_000, seed=0)
        assert trace.metadata.params["drift_interval"] == 500

    def test_hadoop_job_length_scales(self):
        short = hadoop_trace(n_nodes=20, n_requests=2_000, seed=0)
        long = hadoop_trace(n_nodes=20, n_requests=20_000, seed=0)
        assert long.metadata.params["mean_job_length"] > short.metadata.params["mean_job_length"]

    def test_explicit_override_respected(self):
        trace = database_trace(n_nodes=20, n_requests=2_000, seed=0, drift_interval=777)
        assert trace.metadata.params["drift_interval"] == 777


class TestResourceAugmentedConfig:
    def test_rbma_runs_with_a_less_than_b(self, small_leafspine):
        config = MatchingConfig(b=4, alpha=4, a=2)
        algo = RBMA(small_leafspine, config, rng=0)
        for i in range(50):
            algo.serve(Request(i % 7, (i + 1) % 7))
        # The online algorithm still uses degree bound b.
        assert algo.matching.b == 4
        assert algo.theoretical_upper_bound() > 0

    def test_registry_passes_through_config(self, small_leafspine):
        algo = make_algorithm("rbma", small_leafspine, MatchingConfig(b=3, alpha=2, a=1), rng=0)
        assert algo.config.effective_a == 1


class TestRunnerTopologyHandling:
    def test_torus_spec_does_not_get_n_racks(self):
        spec = RunSpec(
            algorithm="oblivious", workload="uniform", b=2, alpha=2.0, topology="torus",
            topology_kwargs={"rows": 4, "cols": 4},
            workload_kwargs={"n_nodes": 16, "n_requests": 100}, seed=0, checkpoints=3,
        )
        result = execute_run_spec(spec)
        assert result.topology.startswith("torus")

    def test_hypercube_spec(self):
        spec = RunSpec(
            algorithm="oblivious", workload="uniform", b=2, alpha=2.0, topology="hypercube",
            topology_kwargs={"dimension": 4},
            workload_kwargs={"n_nodes": 16, "n_requests": 100}, seed=0, checkpoints=3,
        )
        result = execute_run_spec(spec)
        assert result.topology.startswith("hypercube")

    def test_star_lower_bound_spec(self):
        spec = RunSpec(
            algorithm="rbma", workload="uniform", b=2, alpha=2.0, topology="star",
            topology_kwargs={"n_racks": 8, "hub_is_rack": False},
            workload_kwargs={"n_nodes": 8, "n_requests": 150}, seed=1, checkpoints=3,
        )
        result = execute_run_spec(spec)
        assert result.n_requests == 150


class TestSweepWithMultipleAlphas:
    def test_alpha_cross_product(self):
        sweep = SweepConfig(b_values=(2,), alpha_values=(2.0, 8.0), algorithms=("rbma",))
        results = run_sweep(sweep, workload="zipf",
                            workload_kwargs={"n_nodes": 10, "n_requests": 300},
                            checkpoints=3, base_seed=4)
        alphas = sorted(r.alpha for r in results)
        assert alphas == [2.0, 8.0]
        # Lower alpha means the Theorem 1 filter forwards requests more often,
        # so the algorithm reconfigures at least as much per request.
        by_alpha = {r.alpha: r for r in results}
        changes_low = by_alpha[2.0].series.reconfiguration_cost[-1] / 2.0
        changes_high = by_alpha[8.0].series.reconfiguration_cost[-1] / 8.0
        assert changes_low >= changes_high
        assert all(r.routing_cost_mean > 0 for r in results)


class TestFatTreeVersusStarConsistency:
    """Sanity cross-check between topologies used in theory and practice."""

    def test_star_hub_distances_match_lemma1_model(self):
        topo = StarTopology(n_racks=4, hub_is_rack=True)
        # Hub-leaf pairs have length 1, so matching them never saves routing
        # cost; RBMA's threshold k_e then equals alpha.
        algo = RBMA(topo, MatchingConfig(b=2, alpha=6), rng=0)
        assert algo.threshold(topo.distance(0, 1)) == 6

    def test_fattree_mean_distance_between_two_and_four(self):
        topo = FatTreeTopology(n_racks=32)
        assert 2.0 <= topo.mean_distance() <= 4.0
