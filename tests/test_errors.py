"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in errors.__all__:
        exc = getattr(errors, name)
        assert issubclass(exc, Exception)
        assert issubclass(exc, errors.ReproError)


def test_degree_constraint_is_matching_error():
    assert issubclass(errors.DegreeConstraintError, errors.MatchingError)


def test_catching_base_catches_subclasses():
    with pytest.raises(errors.ReproError):
        raise errors.TopologyError("boom")
    with pytest.raises(errors.MatchingError):
        raise errors.DegreeConstraintError("full")
