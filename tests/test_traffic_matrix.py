"""Tests for TrafficMatrix."""

import numpy as np
import pytest

from repro.errors import TrafficError
from repro.traffic import TrafficMatrix


class TestConstruction:
    def test_normalises_and_symmetrises(self):
        m = TrafficMatrix(np.array([[0, 4, 0], [0, 0, 0], [2, 0, 0]], dtype=float))
        assert m.matrix.sum() == pytest.approx(1.0)
        assert np.allclose(m.matrix, m.matrix.T)
        assert np.all(np.diag(m.matrix) == 0)

    def test_rejects_non_square(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(np.ones((2, 3)))

    def test_rejects_negative(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(np.array([[0, -1], [-1, 0]], dtype=float))

    def test_rejects_all_zero(self):
        with pytest.raises(TrafficError):
            TrafficMatrix(np.zeros((3, 3)))

    def test_from_pair_weights(self):
        m = TrafficMatrix.from_pair_weights({(0, 1): 3.0, (1, 2): 1.0}, n_nodes=3)
        assert m.pair_probability(0, 1) == pytest.approx(0.75)
        assert m.pair_probability(1, 2) == pytest.approx(0.25)

    def test_uniform(self):
        m = TrafficMatrix.uniform(4)
        probs = [m.pair_probability(u, v) for u in range(4) for v in range(u + 1, 4)]
        assert all(p == pytest.approx(1 / 6) for p in probs)

    def test_from_node_popularity_gravity(self):
        pop = np.array([4.0, 1.0, 1.0])
        m = TrafficMatrix.from_node_popularity(pop)
        assert m.pair_probability(0, 1) > m.pair_probability(1, 2)

    def test_locality_mask_shape_checked(self):
        with pytest.raises(TrafficError):
            TrafficMatrix.from_node_popularity(np.ones(3), locality=np.ones((2, 2)))


class TestSampling:
    def test_sample_shape_and_validity(self):
        m = TrafficMatrix.uniform(6)
        rng = np.random.default_rng(0)
        pairs = m.sample_pairs(500, rng)
        assert pairs.shape == (500, 2)
        assert np.all(pairs[:, 0] < pairs[:, 1])
        assert pairs.max() < 6

    def test_sample_zero(self):
        m = TrafficMatrix.uniform(4)
        assert m.sample_pairs(0, np.random.default_rng(0)).shape == (0, 2)

    def test_sampling_follows_distribution(self):
        m = TrafficMatrix.from_pair_weights({(0, 1): 9.0, (2, 3): 1.0}, n_nodes=4)
        rng = np.random.default_rng(1)
        pairs = m.sample_pairs(5000, rng)
        hot = np.sum((pairs[:, 0] == 0) & (pairs[:, 1] == 1))
        assert 0.85 < hot / 5000 < 0.95

    def test_self_pair_probability_zero(self):
        m = TrafficMatrix.uniform(4)
        assert m.pair_probability(2, 2) == 0.0


class TestSkewMetrics:
    def test_uniform_has_max_entropy(self):
        m = TrafficMatrix.uniform(6)
        assert m.entropy() == pytest.approx(m.max_entropy())

    def test_skewed_has_lower_entropy(self):
        skewed = TrafficMatrix.from_pair_weights({(0, 1): 100.0, (2, 3): 1.0}, n_nodes=4)
        assert skewed.entropy() < skewed.max_entropy()

    def test_top_share_of_hotspot(self):
        weights = {(0, 1): 98.0}
        weights.update({(i, j): 0.01 for i in range(6) for j in range(i + 1, 6) if (i, j) != (0, 1)})
        m = TrafficMatrix.from_pair_weights(weights, n_nodes=6)
        assert m.skew_top_share(fraction=0.1) > 0.9

    def test_top_pairs_sorted(self):
        m = TrafficMatrix.from_pair_weights({(0, 1): 5.0, (2, 3): 3.0, (1, 2): 1.0}, n_nodes=4)
        top = m.top_pairs(2)
        assert top[0][0] == (0, 1)
        assert top[1][0] == (2, 3)

    def test_invalid_fraction(self):
        m = TrafficMatrix.uniform(4)
        with pytest.raises(TrafficError):
            m.skew_top_share(0.0)
