"""Tests for R-BMA, the paper's randomized online algorithm."""

import math

import numpy as np
import pytest

from repro.config import MatchingConfig
from repro.core import RBMA, ObliviousRouting
from repro.matching.validation import check_b_matching
from repro.paging import RandomizedMarking
from repro.traffic import zipf_pair_trace
from repro.types import Request


class TestTheorem1Filter:
    def test_threshold_formula(self, small_fattree):
        algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=10), rng=0)
        assert algo.threshold(2.0) == math.ceil(10 / 2)
        assert algo.threshold(4.0) == math.ceil(10 / 4)
        assert algo.threshold(1.0) == 10

    def test_threshold_at_least_one(self, small_fattree):
        algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=1), rng=0)
        assert algo.threshold(4.0) == 1

    def test_no_reconfiguration_before_threshold(self, small_fattree):
        # alpha=10 and same-pod distance 2 -> k_e = 5.
        algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=10), rng=0)
        for i in range(4):
            outcome = algo.serve(Request(0, 1))
            assert outcome.edges_added == ()
        assert algo.pending_count((0, 1)) == 4
        outcome = algo.serve(Request(0, 1))  # 5th request is special
        assert outcome.edges_added == ((0, 1),)
        assert algo.pending_count((0, 1)) == 0

    def test_counter_resets_after_special_request(self, small_fattree):
        algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=10), rng=0)
        for _ in range(5):
            algo.serve(Request(0, 1))
        for _ in range(3):
            algo.serve(Request(0, 1))
        assert algo.pending_count((0, 1)) == 3

    def test_shorter_pairs_need_more_requests(self, small_fattree):
        algo = RBMA(small_fattree, MatchingConfig(b=4, alpha=12), rng=0)
        near = small_fattree.validate_pair(0, 1)      # same pod, length 2
        far = small_fattree.validate_pair(0, 15)      # cross pod, length 4
        assert small_fattree.pair_length(near) == 2
        assert small_fattree.pair_length(far) == 4
        assert algo.threshold(2.0) > algo.threshold(4.0)


class TestRBMABehaviour:
    def test_degree_bound_maintained_under_load(self, small_fattree, fb_like_trace):
        algo = RBMA(small_fattree, MatchingConfig(b=3, alpha=8), rng=1)
        for request in fb_like_trace.requests():
            algo.serve(request)
            check_b_matching(algo.matching.edges, small_fattree.n_racks, 3)

    def test_beats_oblivious_on_skewed_traffic(self, small_fattree):
        trace = zipf_pair_trace(n_nodes=16, n_requests=3000, exponent=1.4,
                                repeat_probability=0.5, seed=2)
        config = MatchingConfig(b=4, alpha=8)
        rbma = RBMA(small_fattree, config, rng=0)
        oblivious = ObliviousRouting(small_fattree, config)
        rbma_cost = sum(rbma.serve(r).routing_cost for r in trace.requests())
        obl_cost = sum(oblivious.serve(r).routing_cost for r in trace.requests())
        assert rbma_cost < 0.85 * obl_cost

    def test_hot_pair_gets_matched_and_stays(self, small_fattree):
        algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=6), rng=0)
        for _ in range(200):
            algo.serve(Request(0, 9))
        assert (0, 9) in algo.matching
        assert algo.matched_fraction > 0.9

    def test_reproducible_with_seed(self, small_fattree, fb_like_trace):
        costs = []
        for _ in range(2):
            algo = RBMA(small_fattree, MatchingConfig(b=3, alpha=8), rng=123)
            algo.serve_all(list(fb_like_trace.requests()))
            costs.append(algo.total_cost)
        assert costs[0] == costs[1]

    def test_different_seeds_may_differ(self, small_fattree):
        trace = zipf_pair_trace(n_nodes=16, n_requests=2000, exponent=1.2, seed=5)
        totals = set()
        for seed in range(4):
            algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=4), rng=seed)
            algo.serve_all(list(trace.requests()))
            totals.add(round(algo.total_cost, 6))
        assert len(totals) > 1  # randomized algorithm actually randomizes

    def test_paging_policy_ablation_runs(self, small_fattree, fb_like_trace):
        for policy in ("lru", "fifo", "lfu", "random"):
            algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=8), rng=0,
                        paging_policy=policy)
            algo.serve_all(list(fb_like_trace.requests()))
            check_b_matching(algo.matching.edges, small_fattree.n_racks, 2)

    def test_explicit_paging_factory(self, small_fattree):
        factory_calls = []

        def factory(capacity, rng):
            factory_calls.append(capacity)
            return RandomizedMarking(capacity, rng=rng)

        algo = RBMA(small_fattree, MatchingConfig(b=3, alpha=2), rng=0, paging_factory=factory)
        algo.serve(Request(0, 1))
        assert factory_calls == [3, 3]  # one pager per endpoint, capacity b

    def test_reset_policy_state(self, small_fattree):
        algo = RBMA(small_fattree, MatchingConfig(b=2, alpha=10), rng=0)
        for _ in range(3):
            algo.serve(Request(0, 1))
        algo.reset()
        assert algo.pending_count((0, 1)) == 0
        assert algo.matcher.active_nodes == frozenset()

    def test_theoretical_upper_bound_positive(self, small_fattree):
        algo = RBMA(small_fattree, MatchingConfig(b=6, alpha=40), rng=0)
        bound = algo.theoretical_upper_bound()
        assert bound > 1.0

    def test_marked_edges_still_serve_requests(self, small_fattree):
        """Lazy removal (footnote 2): a marked edge keeps serving at cost 1."""
        algo = RBMA(small_fattree, MatchingConfig(b=1, alpha=2), rng=0)
        # Install (0, 1); then make node 0's cache evict it by loading (0, 2).
        algo.serve(Request(0, 1))
        algo.serve(Request(0, 2))
        # If (0, 1) survived as a marked edge, a request to it still costs 1.
        if (0, 1) in algo.matching:
            outcome = algo.serve(Request(0, 1))
            assert outcome.routing_cost == 1.0
