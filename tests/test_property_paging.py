"""Property-based tests for the paging algorithms (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import (
    BeladyPaging,
    FIFOPaging,
    LFUPaging,
    LRUPaging,
    RandomizedMarking,
    offline_paging_cost,
    partition_into_phases,
)

page_sequences = st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=120)
capacities = st.integers(min_value=1, max_value=6)


def _all_policies(capacity):
    return [
        LRUPaging(capacity),
        FIFOPaging(capacity),
        LFUPaging(capacity),
        RandomizedMarking(capacity, rng=0),
    ]


@given(sequence=page_sequences, capacity=capacities)
@settings(max_examples=100, deadline=None)
def test_capacity_never_exceeded_and_request_always_cached(sequence, capacity):
    for algo in _all_policies(capacity):
        for page in sequence:
            algo.request(page)
            assert len(algo) <= capacity
            assert page in algo


@given(sequence=page_sequences, capacity=capacities)
@settings(max_examples=100, deadline=None)
def test_miss_count_bounds(sequence, capacity):
    """Misses are at least the number of distinct pages (compulsory misses,
    since the cache starts empty), at most the sequence length, and never
    below Belady's offline optimum."""
    distinct = len(set(sequence))
    opt = offline_paging_cost(sequence, capacity)
    assert opt >= distinct  # every distinct page faults at least once
    for algo in _all_policies(capacity):
        misses = algo.serve_sequence(sequence)
        assert distinct <= misses <= len(sequence)
        assert misses >= opt


@given(sequence=page_sequences, capacity=capacities)
@settings(max_examples=60, deadline=None)
def test_phase_lower_bound_consistent_with_belady(sequence, capacity):
    part = partition_into_phases(sequence, capacity)
    assert offline_paging_cost(sequence, capacity) >= part.opt_lower_bound()


@given(sequence=page_sequences, capacity=capacities, seed=st.integers(0, 100))
@settings(max_examples=60, deadline=None)
def test_marking_stats_consistent(sequence, capacity, seed):
    algo = RandomizedMarking(capacity, rng=seed)
    misses = algo.serve_sequence(sequence)
    assert algo.stats.requests == len(sequence)
    assert algo.stats.misses == misses
    assert algo.stats.hits == len(sequence) - misses
    assert algo.stats.evictions <= algo.stats.misses
    # Marked pages are always a subset of the cache.
    assert algo.marked_pages <= algo.cache


@given(sequence=page_sequences, capacity=capacities)
@settings(max_examples=60, deadline=None)
def test_belady_deterministic_and_replayable(sequence, capacity):
    a = BeladyPaging(capacity, sequence).serve_sequence(sequence)
    b = BeladyPaging(capacity, sequence).serve_sequence(sequence)
    assert a == b


@given(sequence=page_sequences)
@settings(max_examples=60, deadline=None)
def test_larger_cache_never_hurts_belady(sequence):
    costs = [offline_paging_cost(sequence, k) for k in (1, 2, 3, 5, 8)]
    assert costs == sorted(costs, reverse=True)
