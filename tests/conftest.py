"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np
import pytest

# Allow running the tests from a source checkout without installation.
_SRC = Path(__file__).resolve().parents[1] / "src"
if _SRC.exists() and str(_SRC) not in sys.path:
    try:  # pragma: no cover - only matters in uninstalled environments
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))

from repro.config import MatchingConfig, SimulationConfig
from repro.topology import FatTreeTopology, LeafSpineTopology, StarTopology
from repro.traffic import database_trace, uniform_random_trace, zipf_pair_trace


def pytest_collection_modifyitems(config, items):
    """Auto-skip ``parallel``/``sched``-marked tests on single-CPU hosts.

    Process-pool sharding works on one CPU but only adds overhead there, and
    CI boxes with a single core should not pay for (or flake on) pool
    startup; the marker documents the requirement instead of each test
    re-checking it.  ``sched`` tests spawn real worker subprocesses and
    follow the same rule, but honour ``REPRO_FORCE_SCHED`` as an escape
    hatch so the tier can still be exercised deliberately on one core.
    """
    if (os.cpu_count() or 1) >= 2:
        return
    skip = pytest.mark.skip(reason="parallel tests need os.cpu_count() >= 2")
    force_sched = bool(os.environ.get("REPRO_FORCE_SCHED", "").strip())
    skip_sched = pytest.mark.skip(
        reason="sched tests need os.cpu_count() >= 2 (set REPRO_FORCE_SCHED=1 to force)"
    )
    for item in items:
        if "parallel" in item.keywords:
            item.add_marker(skip)
        if "sched" in item.keywords and not force_sched:
            item.add_marker(skip_sched)


@pytest.fixture(autouse=True)
def _no_ambient_run_store(monkeypatch):
    """Keep the suite hermetic: a developer's ``REPRO_RUN_STORE`` must not
    leak cached results into tests that expect cold runs (store tests opt
    in by passing explicit store paths)."""
    monkeypatch.delenv("REPRO_RUN_STORE", raising=False)


@pytest.fixture(autouse=True)
def _no_ambient_faults(monkeypatch):
    """Chaos hygiene: no test runs under a leaked fault plan.

    ``REPRO_FAULTS`` in the environment would install faults in every
    worker subprocess a test spawns, and an in-process plan left behind by
    a buggy test would poison its neighbours; chaos tests opt in through
    ``injected_faults``/``install_faults`` or explicit env manipulation.
    """
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_FAULTS_SEED", raising=False)
    from repro.faults import clear_faults

    clear_faults()
    yield
    clear_faults()


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_leafspine() -> LeafSpineTopology:
    """8-rack leaf-spine topology: all pair distances equal 2."""
    return LeafSpineTopology(n_racks=8, n_spines=2)


@pytest.fixture
def small_fattree() -> FatTreeTopology:
    """Fat-tree hosting 16 racks (k=8): distances 2 within a pod, 4 across."""
    return FatTreeTopology(n_racks=16)


@pytest.fixture
def star_lb_topology() -> StarTopology:
    """Star with the hub as rack 0, used by lower-bound constructions."""
    return StarTopology(n_racks=6, hub_is_rack=True)


@pytest.fixture
def small_config() -> MatchingConfig:
    """b = 3, alpha = 4 — small enough that reconfiguration happens quickly."""
    return MatchingConfig(b=3, alpha=4)


@pytest.fixture
def sim_config() -> SimulationConfig:
    """10 checkpoints, fixed seed."""
    return SimulationConfig(checkpoints=10, seed=7)


@pytest.fixture
def small_trace() -> "object":
    """A small skewed trace over 8 racks."""
    return zipf_pair_trace(n_nodes=8, n_requests=400, exponent=1.3, seed=3)


@pytest.fixture
def uniform_trace():
    """A small uniform trace over 8 racks."""
    return uniform_random_trace(n_nodes=8, n_requests=300, seed=5)


@pytest.fixture
def fb_like_trace():
    """A scaled-down Facebook-database-like trace over 16 racks."""
    return database_trace(n_nodes=16, n_requests=2_000, seed=11)
