"""Counter-RNG tier: Philox bit-identity, the rng_mode axis, and replay.

Three layers of certification for :mod:`repro.core.rng`:

* **Bit-identity of the pure-integer pipeline.**  ``counter_bounded_draw``
  reimplements NumPy's entire bounded-draw stack — Philox4x64-10 rounds,
  uint32 half-buffering, Lemire rejection, and the dispatch edge cases —
  in ``@njit``-compatible uint64 arithmetic.  It is pinned against a fresh
  ``Generator(Philox(...))`` at the same coordinates over seeded sweeps and
  hypothesis-driven coordinates, so any drift from NumPy's semantics fails
  here before it can corrupt a kernel.
* **The coordinate contract.**  Draws are pure functions of
  ``(root_seed, stream_id, request_index, draw_counter)``: replaying any
  coordinate replays the draw, changing any coordinate decorrelates, and
  child streams are order-independent.
* **Mode differentials.**  For the randomized algorithms
  (marking/random-eviction paging behind uniform and R-BMA), each rng mode
  must be self-consistent across request-by-request, batched, and streamed
  replay at checkpoint-straddling chunk sizes, on the fast and (pure-Python
  escape hatch) numba drive paths — while the two modes draw genuinely
  different randomness from the same seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MatchingConfig, SimulationConfig
from repro.core.registry import ALGORITHMS
from repro.core.rng import (
    DEFAULT_RNG_MODE,
    RNG_MODES,
    CounterRNG,
    counter_bounded_draw,
    derive_key,
    resolve_rng_mode,
)
from repro.errors import ConfigurationError
from repro.paging import RandomEvictionPaging, RandomizedMarking
from repro.paging.base import coerce_paging_rng
from repro.simulation import run_simulation
from repro.topology import LeafSpineTopology
from repro.traffic import make_workload
from repro.traffic.stream import TraceStream

pytestmark = pytest.mark.rng

_U64 = st.integers(min_value=0, max_value=2**64 - 1)


def _numpy_reference_draw(k0: int, k1: int, index: int, counter: int, n: int) -> int:
    """NumPy's own answer at the draw coordinates, via a fresh generator."""
    bitgen = np.random.Philox(key=np.array([k0, k1], dtype=np.uint64))
    state = bitgen.state
    state["state"]["counter"] = [0, counter, index, 0]
    bitgen.state = state
    gen = np.random.Generator(bitgen)
    dtype = np.uint64 if n > 2**63 else np.int64
    return int(gen.integers(n, dtype=dtype))


# --------------------------------------------------------------------------- #
# Bit-identity: pure-integer pipeline == NumPy == CounterRNG
# --------------------------------------------------------------------------- #
class TestBitIdentity:
    #: Bounds covering every branch of NumPy's bounded-integer dispatch:
    #: n == 1 consumes nothing, small bounds exercise 32-bit Lemire
    #: rejection (including powers of two, which never reject), 2**32 is
    #: the raw-uint32 case, bounds above it take the 64-bit Lemire path,
    #: and 2**64 is the raw-uint64 case.
    EDGE_BOUNDS = (
        1, 2, 3, 5, 7, 13, 64, 100, 101, 2**16, 2**31, 2**32 - 1, 2**32,
        2**32 + 1, 2**33, 2**48 + 12345, 2**63 - 1, 2**63, 2**64 - 1, 2**64,
    )

    def test_pure_integer_draw_matches_numpy_sweep(self):
        """Seeded sweep over keys x coordinates x every dispatch branch."""
        for seed in (0, 1, 97, 2**31, 2**64 - 1):
            k0, k1 = derive_key(seed, stream_id=seed % 5)
            for index in (0, 1, 17, 2**32, 2**64 - 1):
                for counter in (0, 3):
                    for n in self.EDGE_BOUNDS:
                        assert counter_bounded_draw(k0, k1, index, counter, n) == \
                            _numpy_reference_draw(k0, k1, index, counter, n), (
                                f"drift at key=({k0:#x},{k1:#x}) index={index} "
                                f"counter={counter} n={n}"
                            )

    def test_counter_rng_matches_pure_integer_draw(self):
        """The production (NumPy-backed) path equals the pure function."""
        crng = CounterRNG(123, stream_id=45)
        k0, k1 = crng.key
        for index in range(40):
            for n in (1, 2, 3, 12, 1000, 2**31):
                assert crng.integers(n, index) == \
                    counter_bounded_draw(k0, k1, index, 0, n)

    @given(seed=_U64, stream=_U64, index=_U64,
           counter=st.integers(0, 2**32), n=st.integers(1, 2**64))
    @settings(max_examples=150, deadline=None)
    def test_bit_identity_hypothesis(self, seed, stream, index, counter, n):
        """Arbitrary coordinates: pure pipeline == NumPy, always."""
        k0, k1 = derive_key(seed, stream)
        assert counter_bounded_draw(k0, k1, index, counter, n) == \
            _numpy_reference_draw(k0, k1, index, counter, n)

    def test_rejects_empty_range(self):
        with pytest.raises(ValueError, match="n must be >= 1"):
            counter_bounded_draw(1, 2, 0, 0, 0)


# --------------------------------------------------------------------------- #
# The coordinate contract
# --------------------------------------------------------------------------- #
class TestCoordinateContract:
    def test_replay_is_exact(self):
        """The same coordinates always reproduce the same draw."""
        a, b = CounterRNG(7), CounterRNG(7)
        draws = [(a.integers(100, i), b.integers(100, i)) for i in range(200)]
        assert all(x == y for x, y in draws)
        # Re-drawing out of order on the same instance replays too: there is
        # no carried state for the order to perturb.
        assert [a.integers(100, i) for i in reversed(range(200))] == \
            [d for d, _ in reversed(draws)]

    @given(seed=_U64, index_a=_U64, index_b=_U64)
    @settings(max_examples=100, deadline=None)
    def test_index_independence(self, seed, index_a, index_b):
        """Distinct request indices address decorrelated draws.

        With a 2**62 bound, a collision between two independent uniform
        draws has probability 2**-62 — a failure here means the index
        coordinate is being ignored, not bad luck.
        """
        crng = CounterRNG(seed)
        if index_a == index_b:
            assert crng.integers(2**62, index_a) == crng.integers(2**62, index_b)
        else:
            assert crng.integers(2**62, index_a) != crng.integers(2**62, index_b)

    def test_counter_coordinate_is_independent(self):
        crng = CounterRNG(11)
        draws = {crng.integers(2**62, 5, counter) for counter in range(32)}
        assert len(draws) == 32

    def test_streams_are_independent_and_order_free(self):
        root = CounterRNG(42)
        keys = {root.stream(node).key for node in range(64)}
        assert len(keys) == 64  # all distinct
        assert root.stream(3).key == root.stream(3).key  # pure function
        # Nested derivation stays collision-free without any registry.
        assert root.stream(1).stream(2).key != root.stream(2).stream(1).key

    def test_derive_key_sensitivity(self):
        base = derive_key(1000, 0)
        assert derive_key(1001, 0) != base
        assert derive_key(1000, 1) != base

    def test_entropy_seed_is_allowed(self):
        """root_seed=None draws fresh entropy (parity with default_rng)."""
        assert CounterRNG(None).key != CounterRNG(None).key


# --------------------------------------------------------------------------- #
# The rng_mode axis and the paging rng contract
# --------------------------------------------------------------------------- #
class TestModeResolution:
    def test_registry_contents(self):
        assert set(RNG_MODES.names()) >= {"counter", "stateful"}
        assert DEFAULT_RNG_MODE == "counter"

    def test_explicit_mode_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_RNG_MODE", "counter")
        assert resolve_rng_mode("stateful") == "stateful"

    def test_none_falls_back_to_env_then_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_RNG_MODE", raising=False)
        assert resolve_rng_mode(None) == DEFAULT_RNG_MODE
        monkeypatch.setenv("REPRO_RNG_MODE", "stateful")
        assert resolve_rng_mode(None) == "stateful"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_rng_mode("philox5")
        with pytest.raises(ConfigurationError):
            MatchingConfig(b=2, alpha=4.0, rng_mode="no-such-mode")

    def test_config_roundtrip_omits_default(self):
        """rng_mode=None serialises exactly as before the axis existed."""
        assert "rng_mode" not in MatchingConfig(b=2, alpha=4.0).to_dict()
        assert MatchingConfig(b=2, alpha=4.0, rng_mode="stateful").to_dict()[
            "rng_mode"] == "stateful"


class TestPagingRngContract:
    def test_coercion_forms(self):
        gen, crng = coerce_paging_rng(None)
        assert isinstance(gen, np.random.Generator) and crng is None
        gen, crng = coerce_paging_rng(5)
        assert isinstance(gen, np.random.Generator) and crng is None
        explicit = np.random.default_rng(9)
        assert coerce_paging_rng(explicit) == (explicit, None)
        counter = CounterRNG(3)
        assert coerce_paging_rng(counter) == (None, counter)

    @pytest.mark.parametrize("bad", [1.5, "seed", True, np.float64(2.0), object()])
    def test_loose_rng_rejected(self, bad):
        """Floats, strings, bools, foreign objects: loud ConfigurationError.

        ``default_rng`` would silently accept e.g. ``True`` (as seed 1) and
        quietly change the stream; the pagers must refuse instead.
        """
        with pytest.raises(ConfigurationError, match="paging rng must be"):
            coerce_paging_rng(bad)
        with pytest.raises(ConfigurationError, match="paging rng must be"):
            RandomizedMarking(4, rng=bad)
        with pytest.raises(ConfigurationError, match="paging rng must be"):
            RandomEvictionPaging(4, rng=bad)

    @pytest.mark.parametrize("cls", [RandomizedMarking, RandomEvictionPaging])
    def test_counter_pager_replay_is_reset_invariant(self, cls):
        """reset() rewinds the draw index: a replayed request sequence
        reproduces the eviction choices exactly."""
        requests = [i % 7 for i in range(50)]

        def evictions(pager):
            out = []
            for page in requests:
                out.append(pager.request(page).evicted)
            return out

        pager = cls(3, rng=CounterRNG(17))
        first = evictions(pager)
        pager.reset()
        assert evictions(pager) == first


# --------------------------------------------------------------------------- #
# Mode differentials on the randomized algorithms
# --------------------------------------------------------------------------- #
N_NODES = 10
CHUNK_SIZES = (7, 173, 799, 4096)


def _trace():
    return make_workload("zipf", n_nodes=N_NODES, n_requests=800, seed=31,
                         exponent=1.3)


def _build(algorithm, rng_mode, paging_policy):
    topology = LeafSpineTopology(n_racks=N_NODES)
    return ALGORITHMS.build(
        algorithm, topology,
        MatchingConfig(b=3, alpha=4.0, rng_mode=rng_mode),
        61, paging_policy=paging_policy,
    )


def _totals(result, algo):
    return (
        result.total_routing_cost,
        result.total_reconfiguration_cost,
        result.matched_fraction,
        algo.matching.additions,
        algo.matching.removals,
        result.series.routing_cost.tolist(),
    )


def _run(algorithm, rng_mode, paging_policy, backend="fast", chunk_size=None):
    trace = _trace()
    if chunk_size is not None:
        trace = TraceStream.from_trace(trace, chunk_size=chunk_size)
    algo = _build(algorithm, rng_mode, paging_policy)
    result = run_simulation(
        algo, trace, SimulationConfig(checkpoints=5, matching_backend=backend)
    )
    return _totals(result, algo)


@pytest.mark.parametrize("rng_mode", ["stateful", "counter"])
@pytest.mark.parametrize("paging_policy", ["marking", "random"])
@pytest.mark.parametrize("algorithm", ["uniform", "rbma"])
class TestModeDifferentialMatrix:
    """Each mode is self-consistent across every replay shape."""

    def test_batched_replay_matches_reference(
        self, algorithm, rng_mode, paging_policy
    ):
        """reference (request-by-request) == fast (batched) per mode."""
        assert _run(algorithm, rng_mode, paging_policy, backend="reference") == \
            _run(algorithm, rng_mode, paging_policy, backend="fast")

    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_streamed_replay_is_chunk_invariant(
        self, algorithm, rng_mode, paging_policy, chunk_size
    ):
        assert _run(algorithm, rng_mode, paging_policy, chunk_size=chunk_size) == \
            _run(algorithm, rng_mode, paging_policy)

    def test_numba_drive_path_matches(
        self, algorithm, rng_mode, paging_policy, monkeypatch
    ):
        """The numba code path (pure-Python escape hatch) is bit-identical,
        materialized and streamed."""
        monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")
        expected = _run(algorithm, rng_mode, paging_policy, backend="fast")
        assert _run(algorithm, rng_mode, paging_policy, backend="numba") == expected
        assert _run(algorithm, rng_mode, paging_policy, backend="numba",
                    chunk_size=173) == expected


@pytest.mark.parametrize("algorithm", ["uniform", "rbma"])
def test_modes_draw_different_randomness(algorithm):
    """Counter and stateful runs from one seed genuinely diverge — if they
    agreed, the mode switch would not be wired through to the pagers."""
    assert _run(algorithm, "counter", "marking") != \
        _run(algorithm, "stateful", "marking")


def test_env_mode_matches_explicit_config(monkeypatch):
    """REPRO_RNG_MODE=stateful (the CI tier knob) == rng_mode='stateful'."""
    explicit = _run("uniform", "stateful", "marking")
    monkeypatch.setenv("REPRO_RNG_MODE", "stateful")
    assert _run("uniform", None, "marking") == explicit


def test_rng_provenance_recorded():
    """RunResult.extra carries requested and effective mode for uses_rng
    algorithms, and nothing for deterministic ones."""
    trace = _trace()
    topology = LeafSpineTopology(n_racks=N_NODES)
    config = SimulationConfig(checkpoints=3)

    algo = ALGORITHMS.build(
        "uniform", topology, MatchingConfig(b=3, alpha=4.0), 5
    )
    extra = run_simulation(algo, trace, config).extra
    assert extra["rng_mode"] is None  # requested (library default)
    # Effective mode honours REPRO_RNG_MODE, so this stays true under the
    # stateful CI tier as well.
    assert extra["rng_kernel"] == resolve_rng_mode(None)

    algo = ALGORITHMS.build(
        "rbma", topology, MatchingConfig(b=3, alpha=4.0, rng_mode="stateful"), 5
    )
    extra = run_simulation(algo, trace, config).extra
    assert extra["rng_mode"] == "stateful"
    assert extra["rng_kernel"] == "stateful"

    algo = ALGORITHMS.build("bma", topology, MatchingConfig(b=3, alpha=4.0), 5)
    extra = run_simulation(algo, trace, config).extra
    assert "rng_mode" not in extra and "rng_kernel" not in extra


def test_fingerprints_split_by_effective_mode(monkeypatch):
    """Counter and stateful runs of a randomized algorithm must never share
    a store cell; deterministic algorithms carry no rng key at all."""
    from repro.experiments.specs import ExperimentSpec
    from repro.store.fingerprint import effective_kernels, fingerprint_spec

    def spec(name, rng_mode):
        return ExperimentSpec(
            algorithm={"name": name, "b": 3, "alpha": 4.0, "rng_mode": rng_mode},
            traffic={"name": "zipf",
                     "params": {"n_nodes": N_NODES, "n_requests": 100}},
            seed=1,
        )

    assert fingerprint_spec(spec("rbma", "counter")) != \
        fingerprint_spec(spec("rbma", "stateful"))
    # The digest covers the *effective* mode: an unpinned randomized spec
    # resolves through the environment knob, so a stateful-tier run cannot
    # collide with a counter-mode cache cell.
    monkeypatch.delenv("REPRO_RNG_MODE", raising=False)
    assert effective_kernels(spec("rbma", None))["rng_kernel"] == DEFAULT_RNG_MODE
    monkeypatch.setenv("REPRO_RNG_MODE", "stateful")
    assert effective_kernels(spec("rbma", None))["rng_kernel"] == "stateful"
    assert fingerprint_spec(spec("rbma", None)) != \
        fingerprint_spec(spec("rbma", DEFAULT_RNG_MODE))
    # Deterministic algorithms never gain the key, so flipping the library
    # default cannot invalidate their cached runs.
    assert "rng_kernel" not in effective_kernels(spec("bma", None))
