"""End-to-end integration tests: full pipeline from workload to report."""

import numpy as np
import pytest

from repro.analysis import format_comparison_table, format_series_table, routing_cost_reduction
from repro.config import SweepConfig
from repro.simulation import ExperimentRunner, RunSpec, run_sweep
from repro.traffic import available_workloads


WORKLOAD_KWARGS = dict(n_nodes=20, n_requests=1500)


def _specs(workload, b_values, algorithms, alpha=8.0, extra_kwargs=None):
    kwargs = {**WORKLOAD_KWARGS, **(extra_kwargs or {})}
    specs = []
    for algorithm in algorithms:
        for b in b_values:
            specs.append(
                RunSpec(
                    algorithm=algorithm,
                    workload=workload,
                    b=b,
                    alpha=alpha,
                    workload_kwargs=kwargs,
                    checkpoints=6,
                )
            )
    return specs


class TestFullPipeline:
    def test_facebook_database_panel(self):
        """A miniature Figure 1a: R-BMA and BMA beat Oblivious, benefit grows with b."""
        runner = ExperimentRunner(repetitions=2, base_seed=3)
        specs = _specs("facebook-database", b_values=(2, 6), algorithms=("rbma", "bma"))
        specs.append(
            RunSpec(algorithm="oblivious", workload="facebook-database", b=2, alpha=8.0,
                    workload_kwargs=WORKLOAD_KWARGS, checkpoints=6)
        )
        results = runner.compare_on_shared_trace(specs)
        oblivious = results["oblivious (b: 2)"]
        for label, result in results.items():
            if label.startswith("oblivious"):
                continue
            assert routing_cost_reduction(result, oblivious) > 0.05
        # Larger b helps R-BMA.
        assert results["rbma (b: 6)"].routing_cost_mean <= results["rbma (b: 2)"].routing_cost_mean

    def test_rbma_and_bma_are_close(self):
        """The paper's observation: R-BMA achieves roughly BMA's routing cost."""
        runner = ExperimentRunner(repetitions=2, base_seed=5)
        specs = _specs("facebook-web", b_values=(4,), algorithms=("rbma", "bma"))
        results = runner.compare_on_shared_trace(specs)
        rbma = results["rbma (b: 4)"].routing_cost_mean
        bma = results["bma (b: 4)"].routing_cost_mean
        assert abs(rbma - bma) / bma < 0.25

    def test_sobma_wins_on_microsoft(self):
        """The paper's observation: without temporal structure the static
        offline matching has a clear advantage."""
        runner = ExperimentRunner(repetitions=1, base_seed=7)
        specs = _specs("microsoft", b_values=(4,), algorithms=("so-bma", "rbma"),
                       extra_kwargs={"n_nodes": 20})
        results = runner.compare_on_shared_trace(specs)
        assert (
            results["so-bma (b: 4)"].routing_cost_mean
            <= results["rbma (b: 4)"].routing_cost_mean
        )

    def test_sweep_and_tables_render(self):
        sweep = SweepConfig(b_values=(2, 4), alpha_values=(8.0,), algorithms=("rbma", "oblivious"))
        results = run_sweep(sweep, workload="facebook-hadoop", workload_kwargs=WORKLOAD_KWARGS,
                            checkpoints=5, base_seed=1)
        by_label = {r.label: r for r in results}
        table = format_comparison_table(by_label, oblivious_label="oblivious (b: 2)")
        assert "rbma (b: 4)" in table
        # Series tables need a shared grid, which the sweep guarantees per workload size.
        series = format_series_table(by_label, metric="routing_cost", title="sweep")
        assert "sweep" in series

    def test_every_registered_workload_simulates(self):
        """Smoke test: every workload in the registry runs through R-BMA."""
        runner = ExperimentRunner(repetitions=1, base_seed=0)
        for workload in available_workloads():
            kwargs = dict(n_nodes=10, n_requests=200)
            if workload == "hotspot":
                kwargs["n_hot_pairs"] = 3
            agg = runner.run(
                RunSpec(algorithm="rbma", workload=workload, b=2, alpha=4.0,
                        workload_kwargs=kwargs, checkpoints=4)
            )
            assert agg.n_requests == 200
            assert agg.routing_cost_mean > 0

    def test_parallel_sweep_matches_sequential(self):
        sweep = SweepConfig(b_values=(2,), alpha_values=(8.0,), algorithms=("oblivious", "greedy"))
        sequential = run_sweep(sweep, workload="zipf", workload_kwargs=WORKLOAD_KWARGS,
                               checkpoints=4, base_seed=2, n_workers=1)
        parallel = run_sweep(sweep, workload="zipf", workload_kwargs=WORKLOAD_KWARGS,
                             checkpoints=4, base_seed=2, n_workers=2)
        for s, p in zip(sequential, parallel):
            assert s.algorithm == p.algorithm
            assert s.routing_cost_mean == pytest.approx(p.routing_cost_mean)
