"""Tests for the Topology base class and distance-matrix construction."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import TopologyError
from repro.topology import Topology, build_distance_matrix


def _path_graph_topology(n: int) -> Topology:
    g = nx.path_graph(n)
    return Topology(g, list(range(n)), name="path")


class TestBuildDistanceMatrix:
    def test_path_graph_distances(self):
        g = nx.path_graph(5)
        dist = build_distance_matrix(g, [0, 2, 4])
        assert dist.shape == (3, 3)
        assert dist[0, 1] == 2
        assert dist[0, 2] == 4
        assert dist[1, 2] == 2
        assert np.all(np.diag(dist) == 0)

    def test_symmetric(self):
        g = nx.erdos_renyi_graph(12, 0.4, seed=1)
        g.add_edges_from((i, i + 1) for i in range(11))  # ensure connectivity
        dist = build_distance_matrix(g, list(range(12)))
        assert np.allclose(dist, dist.T)

    def test_disconnected_racks_rejected(self):
        g = nx.Graph()
        g.add_edge(0, 1)
        g.add_edge(2, 3)
        with pytest.raises(TopologyError):
            build_distance_matrix(g, [0, 2])

    def test_single_rack_rejected(self):
        g = nx.path_graph(3)
        with pytest.raises(TopologyError):
            build_distance_matrix(g, [0])


class TestTopology:
    def test_basic_accessors(self):
        topo = _path_graph_topology(6)
        assert topo.n_racks == 6
        assert topo.name == "path"
        assert topo.distance(0, 5) == 5
        assert topo.pair_length((1, 4)) == 3

    def test_distance_symmetric(self):
        topo = _path_graph_topology(6)
        assert topo.distance(2, 5) == topo.distance(5, 2)

    def test_distance_out_of_range(self):
        topo = _path_graph_topology(4)
        with pytest.raises(TopologyError):
            topo.distance(0, 4)

    def test_max_and_mean_distance(self):
        topo = _path_graph_topology(4)
        assert topo.max_distance() == 3
        # Pairs: (0,1)=1 (0,2)=2 (0,3)=3 (1,2)=1 (1,3)=2 (2,3)=1 -> mean 10/6
        assert topo.mean_distance() == pytest.approx(10 / 6)

    def test_diameter_alias(self):
        topo = _path_graph_topology(5)
        assert topo.diameter() == topo.max_distance() == 4

    def test_distances_for_vectorised(self):
        topo = _path_graph_topology(5)
        pairs = [(0, 1), (0, 4), (2, 3)]
        np.testing.assert_allclose(topo.distances_for(pairs), [1, 4, 1])

    def test_distances_for_empty(self):
        topo = _path_graph_topology(3)
        assert topo.distances_for([]).size == 0

    def test_all_pairs_count(self):
        topo = _path_graph_topology(5)
        assert len(topo.all_pairs()) == 10

    def test_validate_pair_canonicalises(self):
        topo = _path_graph_topology(5)
        assert topo.validate_pair(4, 1) == (1, 4)

    def test_validate_pair_rejects_self(self):
        topo = _path_graph_topology(5)
        with pytest.raises(TopologyError):
            topo.validate_pair(2, 2)

    def test_validate_pair_rejects_out_of_range(self):
        topo = _path_graph_topology(5)
        with pytest.raises(TopologyError):
            topo.validate_pair(0, 7)

    def test_empty_graph_rejected(self):
        with pytest.raises(TopologyError):
            Topology(nx.Graph(), [], name="empty")

    def test_distance_matrix_shape(self):
        topo = _path_graph_topology(7)
        assert topo.distance_matrix.shape == (7, 7)
