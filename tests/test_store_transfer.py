"""Run-store transfer: tarball export/import with identical-or-error merging.

The contract (see :mod:`repro.store.transfer`): an export is a portable
snapshot of the store's entry files; importing it into another store
round-trips every entry bit-identically, merges recomputation histories of
identical entries, and *aborts before writing anything* when the two stores
disagree about a fingerprint's result — deterministic computations disagree
only when something is broken, so that is an error, never an overwrite.
"""

from __future__ import annotations

import io
import json
import tarfile

import pytest

from repro.cli import main
from repro.errors import ConfigurationError, SimulationError
from repro.experiments import ExperimentSpec
from repro.simulation.parallel import run_specs_parallel
from repro.store import RunStore, export_store, fingerprint_spec, import_store
from repro.store.run_store import _atomic_write_json, entry_checksum
from repro.store.transfer import MANIFEST_NAME

pytestmark = pytest.mark.store

SEED = 2023


def _specs(n=2):
    return [
        ExperimentSpec(
            algorithm={"name": name, "b": 2, "alpha": 4.0},
            traffic={"name": "zipf", "params": {"n_nodes": 10, "n_requests": 120}},
            simulation={"checkpoints": 4},
            seed=SEED,
        )
        for name in ("rbma", "bma", "oblivious")[:n]
    ]


def _populated_store(tmp_path, name="src", n=2):
    store = RunStore(tmp_path / name)
    run_specs_parallel(_specs(n), n_workers=1, store=store)
    return store


class TestExport:
    def test_export_packs_manifest_and_entries(self, tmp_path):
        store = _populated_store(tmp_path)
        tarball = tmp_path / "runs.tar.gz"
        summary = export_store(store, tarball)
        assert summary["exported"] == 2
        assert summary["skipped"] == []
        with tarfile.open(tarball, "r:gz") as tar:
            names = tar.getnames()
            manifest = json.load(tar.extractfile(MANIFEST_NAME))
        assert manifest["entries"] == 2
        assert sorted(manifest["fingerprints"]) == sorted(
            fingerprint_spec(s) for s in _specs(2)
        )
        assert sum(1 for n in names if n.startswith("runs/")) == 2

    def test_torn_entry_files_are_skipped_not_fatal(self, tmp_path):
        store = _populated_store(tmp_path)
        [first, _second] = sorted(store.runs_dir.glob("*/*.json"))
        first.write_text("{ torn", encoding="utf-8")
        summary = export_store(store, tmp_path / "runs.tar.gz")
        assert summary["exported"] == 1
        assert summary["skipped"] == [first.name]


class TestImport:
    def test_round_trip_into_an_empty_store(self, tmp_path):
        source = _populated_store(tmp_path)
        tarball = tmp_path / "runs.tar.gz"
        export_store(source, tarball)
        target = RunStore(tmp_path / "dst")
        summary = import_store(target, tarball)
        assert summary == {"imported": 2, "merged": 0, "unchanged": 0}
        for spec in _specs(2):
            fp = fingerprint_spec(spec)
            assert target.get_payload(fp) == source.get_payload(fp)
        # The index was rebuilt: list/find work without a manual reindex.
        assert len(target.list_runs()) == 2
        # A warm import is a no-op.
        assert import_store(target, tarball) == {
            "imported": 0, "merged": 0, "unchanged": 2,
        }

    def test_identical_entries_merge_their_histories(self, tmp_path):
        source = _populated_store(tmp_path)
        tarball = tmp_path / "runs.tar.gz"
        export_store(source, tarball)
        target = RunStore(tmp_path / "dst")
        import_store(target, tarball)
        # The source recomputes later (same results, new history rows) and
        # re-exports; importing again unions the histories.
        for spec in _specs(2):
            fp = fingerprint_spec(spec)
            payload = source.get_payload(fp)
            payload["history"].append(
                {**payload["history"][-1], "written_at": "2027-01-01T00:00:00+00:00"}
            )
            _atomic_write_json(source.entry_path(fp), payload)
        tarball2 = tmp_path / "runs2.tar.gz"
        export_store(source, tarball2)
        summary = import_store(target, tarball2)
        assert summary["imported"] == 0
        assert summary["merged"] == 2
        for spec in _specs(2):
            payload = target.get_payload(fingerprint_spec(spec))
            assert len(payload["history"]) >= 2

    def test_conflicting_results_abort_without_writing_anything(self, tmp_path):
        source = _populated_store(tmp_path, n=2)
        tarball = tmp_path / "runs.tar.gz"
        export_store(source, tarball)
        # The target holds one of the fingerprints with a *different* result.
        target = RunStore(tmp_path / "dst")
        run_specs_parallel(_specs(1), n_workers=1, store=target)
        conflicted = fingerprint_spec(_specs(1)[0])
        payload = target.get_payload(conflicted)
        payload["result"]["total_routing_cost"] = -1.0
        # Refresh the checksum: this models a *genuinely different* result
        # (two stores disagreeing), not a corrupt entry (which quarantines).
        payload["checksum"] = entry_checksum(payload)
        _atomic_write_json(target.entry_path(conflicted), payload)
        missing = fingerprint_spec(_specs(2)[1])
        with pytest.raises(SimulationError) as excinfo:
            import_store(target, tarball)
        message = str(excinfo.value)
        assert conflicted in message
        assert "nothing was imported" in message
        # The non-conflicting entry was NOT written either (all-or-nothing).
        assert target.get_payload(missing) is None

    def test_truncated_tarball_aborts_before_any_write_naming_the_member(
        self, tmp_path
    ):
        source = _populated_store(tmp_path)
        tarball = tmp_path / "runs.tar.gz"
        export_store(source, tarball)
        # Truncate the download: keep the gzip header and most of the body
        # but drop the tail, the classic interrupted-copy failure.
        data = tarball.read_bytes()
        truncated = tmp_path / "truncated.tar.gz"
        truncated.write_bytes(data[: int(len(data) * 0.6)])
        target = RunStore(tmp_path / "dst")
        with pytest.raises(SimulationError) as excinfo:
            import_store(target, truncated)
        message = str(excinfo.value)
        assert "truncated or corrupt" in message
        assert "nothing was imported" in message
        # The nearest member is named so the operator can see where it died.
        assert "at member" in message or "at the header" in message
        # Abort-before-write: the target store has no entries and no debris.
        assert len(target.list_runs()) == 0
        assert not target.runs_dir.exists() or not list(target.runs_dir.rglob("*.json"))

    def test_corrupt_member_aborts_before_any_write_naming_the_member(
        self, tmp_path
    ):
        source = _populated_store(tmp_path)
        good = tmp_path / "runs.tar.gz"
        export_store(source, good)
        # Rebuild the tarball with one entry's bytes mangled into non-JSON.
        bad = tmp_path / "mangled.tar.gz"
        bad_member = None
        with tarfile.open(good, "r:gz") as src, tarfile.open(bad, "w:gz") as dst:
            for member in src.getmembers():
                data = src.extractfile(member).read()
                if bad_member is None and member.name.startswith("runs/"):
                    bad_member = member.name
                    data = data[: len(data) // 2] + b"\x00garbage"
                info = tarfile.TarInfo(name=member.name)
                info.size = len(data)
                dst.addfile(info, io.BytesIO(data))
        assert bad_member is not None
        target = RunStore(tmp_path / "dst")
        with pytest.raises(SimulationError) as excinfo:
            import_store(target, bad)
        message = str(excinfo.value)
        assert bad_member in message
        assert "nothing was imported" in message
        assert len(target.list_runs()) == 0

    def test_not_an_export_is_a_configuration_error(self, tmp_path):
        bogus = tmp_path / "bogus.tar.gz"
        with tarfile.open(bogus, "w:gz") as tar:
            pass
        with pytest.raises(ConfigurationError, match="missing manifest.json"):
            import_store(RunStore(tmp_path / "dst"), bogus)
        with pytest.raises(ConfigurationError, match="cannot read"):
            import_store(RunStore(tmp_path / "dst"), tmp_path / "absent.tar.gz")


class TestTransferCLI:
    def test_runs_export_import_round_trip(self, tmp_path, capsys):
        source = _populated_store(tmp_path)
        tarball = tmp_path / "runs.tar.gz"
        assert main(["runs", "--store", str(source.root),
                     "export", str(tarball)]) == 0
        assert "exported 2 entries" in capsys.readouterr().out
        target_root = tmp_path / "dst"
        assert main(["runs", "--store", str(target_root),
                     "import", str(tarball)]) == 0
        assert "imported 2 new entries" in capsys.readouterr().out
        assert len(RunStore(target_root).list_runs()) == 2
