"""Tests for the randomized marking algorithm."""

import numpy as np
import pytest

from repro.paging import BeladyPaging, RandomizedMarking, offline_paging_cost


class TestMarkingMechanics:
    def test_requested_pages_are_marked(self):
        algo = RandomizedMarking(3, rng=0)
        algo.request("a")
        algo.request("b")
        assert algo.is_marked("a") and algo.is_marked("b")

    def test_hit_marks_page(self):
        algo = RandomizedMarking(3, rng=0)
        algo.request("a")
        algo.request("b")
        algo.request("a")
        assert algo.is_marked("a")

    def test_never_evicts_marked_page_within_phase(self):
        # Capacity 2: request a, b (both marked).  Requesting c starts a new
        # phase; the victim must come from the previously marked pages, but
        # afterwards only c is marked, so requesting the survivor then d must
        # never evict c (the only marked page) while an unmarked page exists.
        for seed in range(10):
            algo = RandomizedMarking(2, rng=seed)
            algo.request("a")
            algo.request("b")
            algo.request("c")  # phase boundary
            survivor = next(iter(algo.cache - {"c"}), None)
            if survivor is None:
                continue
            result = algo.request("d")
            assert "c" not in result.evicted

    def test_phase_boundary_clears_marks(self):
        algo = RandomizedMarking(2, rng=1)
        algo.request("a")
        algo.request("b")
        assert algo.phase_count == 0
        algo.request("c")
        assert algo.phase_count == 1
        # After the boundary only the newly requested page is marked.
        assert algo.marked_pages == {"c"}

    def test_eviction_unmarks(self):
        algo = RandomizedMarking(1, rng=0)
        algo.request("a")
        algo.request("b")
        assert not algo.is_marked("a")
        assert algo.marked_pages == {"b"}

    def test_reset_clears_marking_state(self):
        algo = RandomizedMarking(2, rng=0)
        algo.serve_sequence(["a", "b", "c", "d"])
        algo.reset()
        assert algo.phase_count == 0
        assert algo.marked_pages == frozenset()

    def test_reproducible_with_same_seed(self):
        rng_sequence = np.random.default_rng(3).integers(0, 8, size=300)
        miss_counts = []
        for _ in range(2):
            algo = RandomizedMarking(4, rng=42)
            miss_counts.append(algo.serve_sequence(rng_sequence.tolist()))
        assert miss_counts[0] == miss_counts[1]


class TestMarkingCompetitiveness:
    def test_beats_worst_case_on_random_sequences(self):
        """Expected cost stays within 2·H_k of Belady's optimum (with slack)."""
        rng = np.random.default_rng(0)
        k = 4
        universe = 8
        sequence = rng.integers(0, universe, size=1200).tolist()
        opt = offline_paging_cost(sequence, k)
        h_k = sum(1 / i for i in range(1, k + 1))
        trials = [
            RandomizedMarking(k, rng=seed).serve_sequence(sequence) for seed in range(5)
        ]
        mean_cost = float(np.mean(trials))
        assert opt > 0
        # 2·H_k ≈ 4.17 for k=4; add 20% slack for the finite sequence.
        assert mean_cost <= 1.2 * 2 * h_k * opt

    def test_optimal_on_cacheable_working_set(self):
        algo = RandomizedMarking(4, rng=0)
        sequence = ["a", "b", "c", "d"] * 50
        misses = algo.serve_sequence(sequence)
        assert misses == 4  # only compulsory misses

    def test_matches_belady_when_capacity_one(self):
        sequence = ["a", "b", "a", "b", "c", "a"]
        algo = RandomizedMarking(1, rng=0)
        assert algo.serve_sequence(sequence) == offline_paging_cost(sequence, 1)
