"""``repro doctor``: auditing and repairing store/queue crash wreckage.

Every anomaly class the doctor knows (see :mod:`repro.doctor`) is seeded
deliberately here — stale tmp siblings, torn and checksum-failing store
entries, a stale or unreadable index, orphaned leases, expired claims,
half-written task files — then the audit must find exactly it, ``--fix``
must repair what is safely repairable, and a second audit must come back
clean.  The CLI front-end's exit codes (0 clean, 1 findings, 2 usage
errors) are part of the contract: chaos CI gates on them.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import main
from repro.doctor import audit_queue, audit_store
from repro.exec.queue import WorkQueue
from repro.experiments import ExperimentSpec
from repro.store.run_store import RunStore

pytestmark = pytest.mark.chaos

SEED = 99


def _spec(seed=SEED):
    return ExperimentSpec(
        algorithm={"name": "rbma", "b": 3, "alpha": 4.0},
        traffic={"name": "zipf", "params": {"n_nodes": 8, "n_requests": 120}},
        simulation={"checkpoints": 4},
        seed=seed,
    )


def _backdate(path, seconds):
    old = time.time() - seconds
    os.utime(path, (old, old))


def _populated_store(tmp_path):
    store = RunStore(tmp_path / "store")
    fp = store.put(_spec().execute())
    return store, fp


def _queue_with_task(tmp_path, **kwargs):
    queue = WorkQueue.create(tmp_path / "queue", **kwargs)
    queue.enqueue(
        {"id": "t0001", "specs": [], "indices": [0], "fingerprints": [None],
         "solver": {}}
    )
    return queue


class TestStoreAudit:
    def test_healthy_store_is_clean(self, tmp_path):
        store, _fp = _populated_store(tmp_path)
        report = audit_store(store)
        assert report.clean()
        assert report.findings == []
        assert report.info["entries"] == 1

    def test_stale_tmp_file_found_and_reaped(self, tmp_path):
        store, fp = _populated_store(tmp_path)
        tmp = store.entry_path(fp).parent / ".dead.json.tmp-1"
        tmp.write_text("{ half")
        _backdate(tmp, 2 * store.TMP_MAX_AGE_SECONDS)
        report = audit_store(store)
        assert [f.kind for f in report.findings] == ["stale_tmp"]
        assert not report.clean()
        fixed = audit_store(store, fix=True)
        assert fixed.clean() and not tmp.exists()
        assert audit_store(store).findings == []

    def test_fresh_tmp_file_is_not_flagged(self, tmp_path):
        store, fp = _populated_store(tmp_path)
        (store.entry_path(fp).parent / ".live.json.tmp-2").write_text("{ mid")
        assert audit_store(store).clean()

    def test_torn_entry_found_and_quarantined(self, tmp_path):
        store, fp = _populated_store(tmp_path)
        store.entry_path(fp).write_text("{ torn")
        report = audit_store(store)
        kinds = sorted(f.kind for f in report.findings)
        # The index still lists the now-torn entry, so both surface.
        assert "corrupt_entry" in kinds
        with pytest.warns(RuntimeWarning):
            fixed = audit_store(store, fix=True)
        assert fixed.clean()
        assert (store.quarantine_dir / f"{fp}.json").exists()
        assert audit_store(store).clean()

    def test_checksum_mismatch_found(self, tmp_path):
        store, fp = _populated_store(tmp_path)
        path = store.entry_path(fp)
        payload = json.loads(path.read_text())
        payload["result"]["total_routing_cost"] = 0.0
        path.write_text(json.dumps(payload))
        report = audit_store(store)
        [finding] = [f for f in report.findings if f.kind == "corrupt_entry"]
        assert "checksum" in finding.detail

    def test_fingerprint_name_mismatch_found(self, tmp_path):
        store, fp = _populated_store(tmp_path)
        path = store.entry_path(fp)
        rogue = path.with_name("ab" * 20 + ".json")
        rogue.write_text(path.read_text())
        report = audit_store(store)
        kinds = [f.kind for f in report.findings]
        assert "corrupt_entry" in kinds

    def test_unreadable_index_found_and_rebuilt(self, tmp_path):
        store, fp = _populated_store(tmp_path)
        store.index_path.write_text("{ torn")
        report = audit_store(store)
        assert "corrupt_index" in [f.kind for f in report.findings]
        fixed = audit_store(store, fix=True)
        assert fixed.clean()
        assert json.loads(store.index_path.read_text())["format"] == 1

    def test_stale_index_found_and_rebuilt(self, tmp_path):
        store, fp = _populated_store(tmp_path)
        store.entry_path(fp).unlink()  # entry removed behind the index's back
        report = audit_store(store)
        assert "stale_index" in [f.kind for f in report.findings]
        assert audit_store(store, fix=True).clean()


class TestQueueAudit:
    def test_healthy_queue_is_clean(self, tmp_path):
        queue = _queue_with_task(tmp_path)
        report = audit_queue(queue)
        assert report.clean() and report.findings == []
        assert report.info["counts"]["ready"] == 1

    def test_orphaned_lease_found_and_removed(self, tmp_path):
        queue = _queue_with_task(tmp_path)
        orphan = queue.claimed_dir / "t9999.a01.json.lease"
        orphan.write_text(json.dumps({"worker": "ghost", "expires_at": 0}))
        report = audit_queue(queue)
        assert [f.kind for f in report.findings] == ["orphaned_lease"]
        assert audit_queue(queue, fix=True).clean()
        assert not orphan.exists()

    def test_expired_claim_found_and_requeued(self, tmp_path):
        queue = _queue_with_task(tmp_path, lease_seconds=30.0)
        name, _ = queue.claim("doomed")
        lease_path = queue.claimed_dir / f"{name}.lease"
        lease = json.loads(lease_path.read_text())
        lease["expires_at"] = time.time() - 60.0
        lease_path.write_text(json.dumps(lease))
        report = audit_queue(queue)
        assert [f.kind for f in report.findings] == ["expired_claim"]
        fixed = audit_queue(queue, fix=True)
        assert fixed.clean()
        # The fix is the queue's own requeue: attempt counter bumped.
        task_id, attempt = queue.parse_name(name)
        assert (queue.tasks_dir / queue.task_file_name(task_id, attempt + 1)).exists()
        assert audit_queue(queue).clean()

    def test_claim_without_lease_gets_a_grace_period(self, tmp_path):
        queue = _queue_with_task(tmp_path, lease_seconds=30.0)
        name, _ = queue.claim("w")
        (queue.claimed_dir / f"{name}.lease").unlink()
        assert audit_queue(queue).clean()  # fresh claim: maybe mid-lease-write
        _backdate(queue.claimed_dir / name, 120.0)
        report = audit_queue(queue)
        assert [f.kind for f in report.findings] == ["expired_claim"]

    def test_half_written_task_file_reported_not_deleted(self, tmp_path):
        queue = _queue_with_task(tmp_path)
        torn = queue.tasks_dir / "t0002.a01.json"
        torn.write_text('{"id": "t0002", "specs": [')
        report = audit_queue(queue)
        [finding] = [f for f in report.findings if f.kind == "half_written_task"]
        assert not finding.fixable
        audit_queue(queue, fix=True)
        assert torn.exists()  # may hold the only copy; never auto-deleted

    def test_stale_tmp_in_queue_dirs_found_and_reaped_by_fix(self, tmp_path):
        queue = _queue_with_task(tmp_path)
        tmp = queue.results_dir / ".r.json.tmp-7"
        tmp.write_text("{ half")
        _backdate(tmp, 2 * queue.TMP_MAX_AGE_SECONDS)
        report = audit_queue(queue)
        assert [f.kind for f in report.findings] == ["stale_tmp"]
        assert audit_queue(queue, fix=True).clean()
        assert not tmp.exists()

    def test_requeue_expired_reaps_stale_tmp_and_counts(self, tmp_path):
        queue = _queue_with_task(tmp_path)
        tmp = queue.tasks_dir / ".t.json.tmp-8"
        tmp.write_text("{ half")
        _backdate(tmp, 2 * queue.TMP_MAX_AGE_SECONDS)
        queue.requeue_expired()
        assert not tmp.exists()
        assert queue.counters.to_dict()["tmp_reaped"] == 1


class TestDoctorCLI:
    def test_exit_codes_audit_fix_clean(self, tmp_path, capsys):
        store, fp = _populated_store(tmp_path)
        store.entry_path(fp).write_text("{ torn")
        queue = _queue_with_task(tmp_path)
        orphan = queue.claimed_dir / "t9.a01.json.lease"
        orphan.write_text("{}")
        args = ["doctor", "--store", str(store.root), "--queue", str(queue.root)]
        assert main(args) == 1
        out = capsys.readouterr().out
        assert "corrupt_entry" in out and "orphaned_lease" in out
        with pytest.warns(RuntimeWarning):
            assert main(args + ["--fix"]) == 0
        capsys.readouterr()
        assert main(args) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        store, _fp = _populated_store(tmp_path)
        assert main(["doctor", "--store", str(store.root), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report[0]["area"] == "store"
        assert report[0]["clean"] is True

    def test_no_targets_is_a_usage_error(self, capsys):
        assert main(["doctor"]) == 2
        assert "nothing to audit" in capsys.readouterr().err

    def test_env_store_is_audited_by_default(self, tmp_path, monkeypatch, capsys):
        store, _fp = _populated_store(tmp_path)
        monkeypatch.setenv("REPRO_RUN_STORE", str(store.root))
        assert main(["doctor"]) == 0
        assert "clean" in capsys.readouterr().out
