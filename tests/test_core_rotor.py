"""Tests for the demand-oblivious rotor baseline."""

import pytest

from repro.config import MatchingConfig
from repro.core import RBMA, RotorBMA, round_robin_schedule
from repro.errors import ConfigurationError
from repro.matching.validation import check_b_matching
from repro.traffic import hotspot_trace, uniform_random_trace
from repro.types import Request, canonical_pair


class TestRoundRobinSchedule:
    @pytest.mark.parametrize("n", [2, 4, 6, 8, 10])
    def test_even_n_perfect_matchings(self, n):
        schedule = round_robin_schedule(n)
        assert len(schedule) == n - 1
        for slot in schedule:
            assert len(slot) == n // 2
            nodes = [x for pair in slot for x in pair]
            assert len(nodes) == len(set(nodes))

    @pytest.mark.parametrize("n", [3, 5, 7])
    def test_odd_n_near_perfect(self, n):
        schedule = round_robin_schedule(n)
        assert len(schedule) == n
        for slot in schedule:
            assert len(slot) == (n - 1) // 2

    @pytest.mark.parametrize("n", [4, 5, 8, 9])
    def test_every_pair_appears_exactly_once(self, n):
        schedule = round_robin_schedule(n)
        seen = [pair for slot in schedule for pair in slot]
        assert len(seen) == len(set(seen)) == n * (n - 1) // 2
        assert set(seen) == {canonical_pair(u, v) for u in range(n) for v in range(u + 1, n)}

    def test_rejects_single_node(self):
        with pytest.raises(ConfigurationError):
            round_robin_schedule(1)


class TestRotorBMA:
    def test_initial_matching_installed_for_free(self, small_leafspine):
        algo = RotorBMA(small_leafspine, MatchingConfig(b=2, alpha=4), period=10)
        assert len(algo.matching) > 0
        assert algo.total_reconfiguration_cost == 0.0
        assert len(algo.installed_slots) == 2

    def test_rotation_after_period(self, small_leafspine):
        algo = RotorBMA(small_leafspine, MatchingConfig(b=2, alpha=4), period=5)
        before = set(algo.matching.edges)
        for _ in range(4):
            outcome = algo.serve(Request(0, 1))
            assert outcome.edges_added == () and outcome.edges_removed == ()
        outcome = algo.serve(Request(0, 1))  # 5th request rotates
        assert outcome.edges_added or outcome.edges_removed
        assert set(algo.matching.edges) != before
        assert outcome.reconfiguration_cost > 0

    def test_degree_bound_and_feasibility_over_time(self, small_leafspine):
        trace = uniform_random_trace(n_nodes=8, n_requests=500, seed=1)
        algo = RotorBMA(small_leafspine, MatchingConfig(b=3, alpha=4), period=20)
        for request in trace.requests():
            algo.serve(request)
            check_b_matching(algo.matching.edges, 8, 3)
        # Rotation keeps exactly b slots installed.
        assert len(algo.installed_slots) == 3

    def test_no_rotation_when_all_slots_fit(self, small_leafspine):
        # 8 racks -> 7 slots; with b=7 every pair is always matched.
        algo = RotorBMA(small_leafspine, MatchingConfig(b=7, alpha=4), period=1)
        trace = uniform_random_trace(n_nodes=8, n_requests=100, seed=2)
        for request in trace.requests():
            outcome = algo.serve(request)
            assert outcome.served_by_matching
            assert outcome.reconfiguration_cost == 0.0

    def test_demand_aware_beats_rotor_on_skewed_traffic(self, small_fattree):
        trace = hotspot_trace(n_nodes=16, n_requests=3000, n_hot_pairs=4,
                              hot_fraction=0.9, seed=3)
        config = MatchingConfig(b=2, alpha=8)
        rotor = RotorBMA(small_fattree, config, period=100)
        rbma = RBMA(small_fattree, config, rng=0)
        rotor_cost = sum(rotor.serve(r).routing_cost for r in trace.requests())
        rbma_cost = sum(rbma.serve(r).routing_cost for r in trace.requests())
        assert rbma_cost < rotor_cost

    def test_rejects_bad_period(self, small_leafspine):
        with pytest.raises(ConfigurationError):
            RotorBMA(small_leafspine, MatchingConfig(b=2, alpha=4), period=0)

    def test_reset(self, small_leafspine):
        algo = RotorBMA(small_leafspine, MatchingConfig(b=2, alpha=4), period=3)
        for _ in range(10):
            algo.serve(Request(0, 1))
        algo.reset()
        assert algo.total_cost == 0.0
        assert len(algo.installed_slots) == 2
        assert len(algo.matching) > 0
