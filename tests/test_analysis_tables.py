"""Tests for the plain-text result tables used by the benchmark harness."""

import numpy as np
import pytest

from repro.analysis import (
    format_comparison_table,
    format_series_table,
    routing_cost_reduction,
    series_rows,
)
from repro.errors import SimulationError
from repro.simulation import CheckpointSeries, RunResult, aggregate_runs


def _aggregate(algorithm, b, routing_values, elapsed=0.5):
    n = len(routing_values)
    series = CheckpointSeries(
        requests=np.arange(1, n + 1, dtype=np.int64) * 100,
        routing_cost=np.asarray(routing_values, dtype=float),
        reconfiguration_cost=np.zeros(n),
        elapsed_seconds=np.linspace(0.1, elapsed, n),
        matched_fraction=np.linspace(0, 0.8, n),
    )
    run = RunResult(
        algorithm=algorithm, workload="w", topology="t", b=b, alpha=4.0,
        n_requests=n * 100, seed=0, series=series,
        total_routing_cost=float(routing_values[-1]),
        total_reconfiguration_cost=0.0,
        total_elapsed_seconds=elapsed, matched_fraction=0.8,
    )
    return aggregate_runs([run])


@pytest.fixture
def results():
    return {
        "rbma (b: 6)": _aggregate("rbma", 6, [50, 100, 150]),
        "bma (b: 6)": _aggregate("bma", 6, [55, 110, 160]),
        "oblivious": _aggregate("oblivious", 6, [100, 200, 300]),
    }


class TestSeriesRows:
    def test_rows_structure(self, results):
        rows = series_rows(results, metric="routing_cost")
        assert len(rows) == 3
        assert rows[0] == [100.0, 50.0, 55.0, 100.0]
        assert rows[-1][0] == 300.0

    def test_metrics_selectable(self, results):
        assert series_rows(results, metric="elapsed_seconds")[0][1] == pytest.approx(0.1)
        assert series_rows(results, metric="matched_fraction")[-1][1] == pytest.approx(0.8)

    def test_unknown_metric(self, results):
        with pytest.raises(SimulationError):
            series_rows(results, metric="nope")

    def test_empty_results(self):
        with pytest.raises(SimulationError):
            series_rows({})

    def test_mismatched_grids_rejected(self, results):
        bad = dict(results)
        bad["short"] = _aggregate("rbma", 6, [10])
        with pytest.raises(SimulationError):
            series_rows(bad)


class TestFormatting:
    def test_series_table_contains_labels_and_values(self, results):
        table = format_series_table(results, title="Fig 1a")
        assert "Fig 1a" in table
        assert "rbma (b: 6)" in table
        assert "# requests" in table
        assert "300" in table

    def test_comparison_table_reduction(self, results):
        table = format_comparison_table(results, oblivious_label="oblivious")
        assert "reduction vs oblivious" in table
        assert "50.0%" in table  # rbma: 150 vs 300

    def test_routing_cost_reduction(self, results):
        red = routing_cost_reduction(results["rbma (b: 6)"], results["oblivious"])
        assert red == pytest.approx(0.5)

    def test_reduction_rejects_zero_baseline(self, results):
        zero = _aggregate("oblivious", 6, [0.0, 0.0, 0.0])
        with pytest.raises(SimulationError):
            routing_cost_reduction(results["rbma (b: 6)"], zero)

    def test_empty_comparison_rejected(self):
        with pytest.raises(SimulationError):
            format_comparison_table({})
