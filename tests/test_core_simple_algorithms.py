"""Tests for the oblivious and greedy algorithms and the algorithm registry."""

import pytest

from repro.config import MatchingConfig
from repro.core import (
    BMA,
    RBMA,
    GreedyBMA,
    ObliviousRouting,
    StaticOfflineBMA,
    available_algorithms,
    make_algorithm,
)
from repro.errors import ConfigurationError
from repro.types import Request


class TestOblivious:
    def test_never_reconfigures(self, small_fattree, fb_like_trace):
        algo = ObliviousRouting(small_fattree, MatchingConfig(b=3, alpha=4))
        algo.serve_all(list(fb_like_trace.requests()))
        assert len(algo.matching) == 0
        assert algo.total_reconfiguration_cost == 0.0
        assert algo.matched_fraction == 0.0

    def test_cost_equals_sum_of_lengths(self, small_fattree, fb_like_trace):
        algo = ObliviousRouting(small_fattree, MatchingConfig(b=3, alpha=4))
        expected = sum(
            small_fattree.pair_length(small_fattree.validate_pair(r.src, r.dst))
            for r in fb_like_trace.requests()
        )
        algo.serve_all(list(fb_like_trace.requests()))
        assert algo.total_routing_cost == pytest.approx(expected)


class TestGreedy:
    def test_adds_after_threshold(self, small_leafspine):
        algo = GreedyBMA(small_leafspine, MatchingConfig(b=2, alpha=4))
        algo.serve(Request(0, 1))
        assert (0, 1) not in algo.matching
        algo.serve(Request(0, 1))
        assert (0, 1) in algo.matching

    def test_never_evicts(self, small_leafspine):
        algo = GreedyBMA(small_leafspine, MatchingConfig(b=1, alpha=2))
        algo.serve(Request(0, 1))
        assert (0, 1) in algo.matching
        for _ in range(20):
            algo.serve(Request(0, 2))
        # Node 0 is full and greedy never evicts, so (0,2) can never enter.
        assert (0, 2) not in algo.matching
        assert (0, 1) in algo.matching
        assert algo.matching.removals == 0

    def test_custom_threshold(self, small_leafspine):
        algo = GreedyBMA(small_leafspine, MatchingConfig(b=2, alpha=10), threshold=2)
        algo.serve(Request(0, 1))
        assert (0, 1) in algo.matching

    def test_matched_requests_do_not_accumulate(self, small_leafspine):
        algo = GreedyBMA(small_leafspine, MatchingConfig(b=2, alpha=2))
        algo.serve(Request(0, 1))
        for _ in range(5):
            outcome = algo.serve(Request(0, 1))
            assert outcome.edges_added == ()


class TestRegistry:
    def test_lists_expected_algorithms(self):
        names = available_algorithms()
        for expected in ("rbma", "bma", "oblivious", "greedy", "so-bma", "uniform", "predictive"):
            assert expected in names

    def test_make_algorithm_types(self, small_leafspine):
        config = MatchingConfig(b=2, alpha=4)
        assert isinstance(make_algorithm("rbma", small_leafspine, config, rng=0), RBMA)
        assert isinstance(make_algorithm("bma", small_leafspine, config), BMA)
        assert isinstance(make_algorithm("so-bma", small_leafspine, config), StaticOfflineBMA)
        assert isinstance(make_algorithm("oblivious", small_leafspine, config), ObliviousRouting)
        assert isinstance(make_algorithm("greedy", small_leafspine, config), GreedyBMA)

    def test_kwargs_forwarded(self, small_leafspine):
        algo = make_algorithm(
            "rbma", small_leafspine, MatchingConfig(b=2, alpha=4), rng=0, paging_policy="lru"
        )
        assert isinstance(algo, RBMA)

    def test_case_insensitive(self, small_leafspine):
        algo = make_algorithm("RBMA", small_leafspine, MatchingConfig(b=2, alpha=4), rng=0)
        assert algo.name == "rbma"

    def test_unknown_algorithm(self, small_leafspine):
        with pytest.raises(ConfigurationError):
            make_algorithm("nope", small_leafspine, MatchingConfig(b=2, alpha=4))
