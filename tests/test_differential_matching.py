"""Differential harness: every kernel must be indistinguishable from BMatching.

Two layers of evidence certify the fast and numba kernels:

* **Operation-level** — randomized operation sequences (hypothesis-driven and
  seeded-exhaustive) are applied to all kernels in lockstep; every return
  value, every raised exception (type *and* message), and the full observable
  state (edges, marks, degrees, counters) must agree after every step.
* **Replay-level** — full simulations are executed once per
  ``matching_backend``, for every registered algorithm across all registered
  topologies and workloads; the resulting :class:`RunResult` cost totals and
  checkpoint series must be *bit-identical* (exact float equality, not
  approximate), as must the final matching state.

Because the engine routes ``"reference"`` runs through the original
per-request loop and ``"fast"``/``"numba"`` runs through the batched
``serve_batch`` path, the replay layer simultaneously guards the kernel
swaps, the batched engine path, and every algorithm's hand-tuned batch loop
(including the numba scan drivers).

The numba legs run on every host: an autouse fixture sets
``REPRO_NUMBA_PUREPY`` so the numba code path executes uncompiled where
numba is missing — same functions, same arithmetic, no JIT.  Under the
*nonumba* CI tier (``REPRO_NO_NUMBA=1``, which takes precedence) the
``"numba"`` legs resolve to the fast-kernel fallback instead, which is
exactly the behaviour that tier exists to exercise; the one test that
requires the numba backend to be genuinely active skips itself there.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MatchingConfig, SimulationConfig
from repro.core.registry import ALGORITHMS
from repro.errors import ReproError
from repro.experiments import ExperimentSpec
from repro.matching import (
    BMatching,
    FastBMatching,
    NumbaBMatching,
    convert_matching,
    make_matching,
    numba_backend_active,
)
from repro.simulation import run_simulation
from repro.topology.registry import TOPOLOGIES
from repro.traffic.registry import WORKLOADS

BACKENDS = ("reference", "fast", "numba")


@pytest.fixture(autouse=True)
def _enable_numba_leg(monkeypatch):
    """Let the numba backend run (uncompiled) on hosts without numba.

    ``REPRO_NO_NUMBA`` deliberately keeps precedence: the nonumba CI tier
    masks the backend regardless, turning the numba legs into fallback-path
    coverage.
    """
    monkeypatch.setenv("REPRO_NUMBA_PUREPY", "1")

# --------------------------------------------------------------------------- #
# Operation-level differential testing
# --------------------------------------------------------------------------- #

N_NODES = 7
B = 2

#: (op name, number of node arguments) — ops taking node pairs may receive
#: arbitrary (also invalid) combinations so exception behaviour is compared.
_OPS = [
    ("add", 2),
    ("remove", 2),
    ("mark_for_removal", 2),
    ("unmark", 2),
    ("prune_to_capacity", 1),
    ("has_capacity", 2),
    ("is_marked", 2),
    ("degree", 1),
    ("is_full", 1),
    ("edges_at", 1),
    ("contains", 2),
    ("clear", 0),
    ("reset_counters", 0),
]


def _apply(matching, op: str, args: tuple):
    """Run one operation, returning ('ok', value) or ('raise', type, message)."""
    try:
        if op == "contains":
            return ("ok", tuple(args) in matching)
        value = getattr(matching, op)(*args)
        if isinstance(value, frozenset):
            value = sorted(value)
        return ("ok", value)
    except (ReproError, ValueError) as exc:
        return ("raise", type(exc).__name__, str(exc))


def _snapshot(matching):
    return {
        "edges": sorted(matching.edges),
        "marked": sorted(matching.marked_edges),
        "degrees": [matching.degree(node) for node in range(matching.n_nodes)],
        "additions": matching.additions,
        "removals": matching.removals,
        "len": len(matching),
        "iter": sorted(matching),
    }


def _run_lockstep(ops):
    reference = BMatching(N_NODES, B)
    others = {"fast": FastBMatching(N_NODES, B), "numba": NumbaBMatching(N_NODES, B)}
    for step, (op_idx, nodes) in enumerate(ops):
        op, arity = _OPS[op_idx % len(_OPS)]
        args = tuple(nodes[:arity])
        ref_out = _apply(reference, op, args)
        ref_state = _snapshot(reference)
        for name, kernel in others.items():
            out = _apply(kernel, op, args)
            assert ref_out == out, (
                f"step {step}: {op}{args} diverged: reference={ref_out} {name}={out}"
            )
            assert ref_state == _snapshot(kernel), (
                f"step {step}: {name} state diverged after {op}{args}"
            )
        # The numba kernel's membership LUT must mirror its edge set exactly
        # (the compiled scans trust it blindly).
        numba = others["numba"]
        lut_keys = sorted(int(k) for k in np.nonzero(numba.member_lut)[0])
        assert lut_keys == sorted(numba.edge_keys), f"step {step}: LUT drifted"


# Node values deliberately include out-of-range ids and duplicate endpoints so
# the harness compares error paths, not just the happy path.
_node = st.integers(min_value=-1, max_value=N_NODES)
_op = st.tuples(st.integers(min_value=0, max_value=len(_OPS) - 1),
                st.tuples(_node, _node))


@settings(max_examples=120, deadline=None)
@given(st.lists(_op, min_size=1, max_size=60))
def test_random_op_sequences_agree(ops):
    """Hypothesis: both kernels agree on arbitrary operation sequences."""
    _run_lockstep(ops)


@pytest.mark.parametrize("seed", range(25))
def test_seeded_long_op_sequences_agree(seed):
    """Long seeded sequences biased towards valid, mark-heavy workloads."""
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(400):
        op_idx = int(rng.integers(len(_OPS)))
        u = int(rng.integers(N_NODES))
        v = int(rng.integers(N_NODES))
        ops.append((op_idx, (u, v)))
    _run_lockstep(ops)


def test_copy_and_convert_roundtrip():
    """copy() stays within a backend; convert_matching hops between them."""
    rng = np.random.default_rng(3)
    fast = FastBMatching(N_NODES, B)
    for _ in range(40):
        u, v = int(rng.integers(N_NODES)), int(rng.integers(N_NODES))
        if u == v:
            continue
        if fast.has_capacity(u, v):
            fast.add(u, v)
        elif (u, v) in fast:
            fast.mark_for_removal(u, v)
    assert isinstance(fast.copy(), FastBMatching)
    assert _snapshot(fast.copy()) == _snapshot(fast)
    reference = convert_matching(fast, "reference")
    assert isinstance(reference, BMatching)
    assert _snapshot(reference) == _snapshot(fast)
    back = convert_matching(reference, "fast")
    assert isinstance(back, FastBMatching)
    assert _snapshot(back) == _snapshot(fast)
    # Same-backend conversion is the identity, not a copy.
    assert convert_matching(fast, "fast") is fast
    if numba_backend_active():
        compiled = convert_matching(fast, "numba")
        assert type(compiled) is NumbaBMatching
        assert _snapshot(compiled) == _snapshot(fast)
        clone = compiled.copy()
        assert type(clone) is NumbaBMatching
        assert _snapshot(clone) == _snapshot(compiled)
        assert np.array_equal(clone.member_lut, compiled.member_lut)
        assert convert_matching(compiled, "numba") is compiled
        assert _snapshot(convert_matching(compiled, "fast")) == _snapshot(fast)


def test_make_matching_backends():
    assert isinstance(make_matching(4, 2, "reference"), BMatching)
    assert isinstance(make_matching(4, 2, "fast"), FastBMatching)
    assert isinstance(make_matching(4, 2), FastBMatching)  # default
    # "numba" always resolves: to the compiled kernel when active, to the
    # fast kernel (with a one-time warning elsewhere) when not.
    expected = NumbaBMatching if numba_backend_active() else FastBMatching
    assert type(make_matching(4, 2, "numba")) is expected
    with pytest.raises(ReproError):
        make_matching(4, 2, "no-such-kernel")


# --------------------------------------------------------------------------- #
# Replay-level differential testing
# --------------------------------------------------------------------------- #

#: Registry names deduplicated to their canonical spelling.
ALGORITHM_NAMES = sorted({ALGORITHMS.canonical(name) for name in ALGORITHMS.names()})
TOPOLOGY_NAMES = sorted({TOPOLOGIES.canonical(name) for name in TOPOLOGIES.names()})
WORKLOAD_NAMES = sorted({WORKLOADS.canonical(name) for name in WORKLOADS.names()})

_CANONICAL_TOPOLOGY = "leaf-spine"
_CANONICAL_WORKLOAD = "zipf"

#: Constructor parameters for topologies not sized by ``n_racks`` (torus,
#: hypercube; both sized to the 8 racks the traces address) or needing a
#: pinned seed to be reproducible (expander builds a random regular graph).
_TOPOLOGY_PARAMS = {
    "torus": {"rows": 2, "cols": 4},
    "hypercube": {"dimension": 3},
    "expander": {"seed": 7},
}

_WORKLOAD_PARAMS = {
    "hotspot": {"n_hot_pairs": 3},
}


def _spec(algorithm: str, topology: str, workload: str, backend: str) -> ExperimentSpec:
    params = {"solver": "greedy"} if algorithm == "so-bma" else {}
    workload_params = {"n_nodes": 8, "n_requests": 250,
                       **_WORKLOAD_PARAMS.get(workload, {})}
    return ExperimentSpec(
        algorithm={"name": algorithm, "b": 3, "alpha": 4.0, "params": params},
        traffic={"name": workload, "params": workload_params},
        topology={"name": topology, "params": _TOPOLOGY_PARAMS.get(topology, {})},
        simulation={"checkpoints": 6, "matching_backend": backend},
        seed=11,
    )


def _assert_bit_identical(reference, fast, what: str) -> None:
    assert reference.total_routing_cost == fast.total_routing_cost, what
    assert reference.total_reconfiguration_cost == fast.total_reconfiguration_cost, what
    assert reference.matched_fraction == fast.matched_fraction, what
    assert np.array_equal(reference.series.requests, fast.series.requests), what
    assert np.array_equal(reference.series.routing_cost, fast.series.routing_cost), what
    assert np.array_equal(
        reference.series.reconfiguration_cost, fast.series.reconfiguration_cost
    ), what
    assert np.array_equal(
        reference.series.matched_fraction, fast.series.matched_fraction
    ), what


def _compare_backends(algorithm: str, topology: str, workload: str) -> None:
    runs = {}
    for backend in BACKENDS:
        spec = _spec(algorithm, topology, workload, backend)
        trace = spec.build_trace()
        topo = spec.build_topology(trace)
        algo = spec.build_algorithm(topo)
        runs[backend] = (
            run_simulation(algo, trace, SimulationConfig(
                checkpoints=6, matching_backend=backend)),
            sorted(algo.matching.edges),
            sorted(algo.matching.marked_edges),
            algo.matching.additions,
            algo.matching.removals,
        )
        if backend == "numba" and numba_backend_active():
            assert algo.matching.backend_name == "numba", (
                f"numba leg of {algorithm} did not run on the numba kernel"
            )
    ref = runs["reference"]
    for backend in BACKENDS[1:]:
        what = f"{algorithm} on {topology}/{workload} ({backend} vs reference)"
        other = runs[backend]
        _assert_bit_identical(ref[0], other[0], what)
        assert ref[1:] == other[1:], f"final matching state diverged for {what}"


@pytest.mark.parametrize("topology", TOPOLOGY_NAMES)
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_replay_identical_across_topologies(algorithm, topology):
    """Every algorithm x every registered topology (canonical workload)."""
    _compare_backends(algorithm, topology, _CANONICAL_WORKLOAD)


@pytest.mark.parametrize("workload", [w for w in WORKLOAD_NAMES
                                      if w != _CANONICAL_WORKLOAD])
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
def test_replay_identical_across_workloads(algorithm, workload):
    """Every algorithm x every registered workload (canonical topology)."""
    _compare_backends(algorithm, _CANONICAL_TOPOLOGY, workload)


def test_backend_recorded_in_spec_roundtrip():
    """matching_backend survives the spec dict/JSON round-trip."""
    for backend in ("reference", "numba"):
        spec = _spec("rbma", "leaf-spine", "zipf", backend)
        clone = ExperimentSpec.from_dict(spec.to_dict())
        assert clone.simulation.matching_backend == backend
        assert clone == spec


def test_numba_leg_is_genuinely_active():
    """Outside the nonumba tier, the numba legs must not silently degrade.

    Guards the harness itself: if the purepy escape hatch ever stopped
    activating the backend, every numba comparison above would become a
    fast-vs-fast tautology without failing.
    """
    if os.environ.get("REPRO_NO_NUMBA", "").strip() not in ("", "0"):
        pytest.skip("nonumba tier: the numba backend is masked by design")
    assert numba_backend_active()
    assert type(make_matching(4, 2, "numba")) is NumbaBMatching


# --------------------------------------------------------------------------- #
# Batched-path coverage: every algorithm, segment-boundary robustness
# --------------------------------------------------------------------------- #


def test_every_registered_algorithm_is_batched():
    """No registered algorithm may fall back to the default per-request loop.

    ``supports_batch`` marks a hand-tuned ``serve_batch``; since PR 3 every
    registered algorithm ships one, so the engine's batched path never
    degenerates to per-request serving for library algorithms.
    """
    topo = TOPOLOGIES.build("leaf-spine", n_racks=8)
    for name in ALGORITHM_NAMES:
        algo = ALGORITHMS.build(name, topo, MatchingConfig(b=3, alpha=4.0), 0)
        assert algo.supports_batch, f"{name} still takes the per-request fallback"
        assert "serve_batch" in type(algo).__dict__, (
            f"{name} sets supports_batch but inherits the default serve_batch"
        )


@pytest.mark.parametrize("backend", ["fast", "numba"])
@pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
@pytest.mark.parametrize("seed", [0, 1])
def test_serve_batch_random_segments_match_serve(algorithm, seed, backend):
    """serve_batch over arbitrary segment splits == request-by-request serve.

    The engine only ever hands out checkpoint- and interval-aligned
    segments; this drives every algorithm's hand-tuned batch loop across
    *random* segment boundaries (including single-request segments) so that
    all state carried between ``serve_batch`` calls — rotation counters,
    predictor windows, expert costs, paging marks, and the numba drivers'
    dict<->dense-array counter syncs — is proven equivalent to sequential
    serving, not just equivalent at checkpoint granularity.  The sequential
    arm always runs on the default fast kernel, so the numba leg is also a
    cross-backend comparison.
    """
    spec = _spec(algorithm, "leaf-spine", "zipf", backend)
    trace = spec.build_trace()
    topo = spec.build_topology(trace)

    batched = spec.build_algorithm(topo)
    batched.rebind_matching_backend(backend)
    if batched.requires_full_trace:
        batched.fit(trace)
    rng = np.random.default_rng(seed)
    cuts = sorted(rng.choice(len(trace), size=12, replace=False).tolist())
    bounds = [0] + [c for c in cuts if c > 0] + [len(trace)]
    for start, stop in zip(bounds, bounds[1:]):
        if stop > start:
            batched.serve_batch(trace[start:stop])

    sequential = spec.build_algorithm(topo)
    if sequential.requires_full_trace:
        sequential.fit(list(trace.requests()))
    for request in trace.requests():
        sequential.serve(request)

    what = f"{algorithm} (seed {seed})"
    assert batched.total_routing_cost == sequential.total_routing_cost, what
    assert (
        batched.total_reconfiguration_cost == sequential.total_reconfiguration_cost
    ), what
    assert batched.requests_served == sequential.requests_served, what
    assert batched.matched_requests == sequential.matched_requests, what
    assert sorted(batched.matching.edges) == sorted(sequential.matching.edges), what
    assert sorted(batched.matching.marked_edges) == sorted(
        sequential.matching.marked_edges
    ), what
    assert batched.matching.additions == sequential.matching.additions, what
    assert batched.matching.removals == sequential.matching.removals, what
