"""Tests for the fat-tree topology (the paper's evaluation fabric)."""

import pytest

from repro.errors import TopologyError
from repro.topology import FatTreeTopology


class TestFatTreeConstruction:
    def test_explicit_k(self):
        topo = FatTreeTopology(k=4)
        # k=4 fat tree: 8 ToR switches.
        assert topo.n_racks == 8
        assert topo.k == 4

    def test_n_racks_picks_smallest_k(self):
        topo = FatTreeTopology(n_racks=100)
        assert topo.n_racks == 100
        assert topo.k == 16  # smallest even k with k^2/2 >= 100 is 16 (128 ToRs)

    def test_n_racks_50(self):
        topo = FatTreeTopology(n_racks=50)
        assert topo.n_racks == 50
        assert topo.k == 10  # 10^2/2 = 50

    def test_rejects_odd_k(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(k=5)

    def test_rejects_too_many_racks_for_k(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(n_racks=9, k=4)

    def test_requires_some_argument(self):
        with pytest.raises(TopologyError):
            FatTreeTopology()

    def test_rejects_single_rack(self):
        with pytest.raises(TopologyError):
            FatTreeTopology(n_racks=1)


class TestFatTreeDistances:
    def test_same_pod_distance_two(self):
        topo = FatTreeTopology(k=4)
        # Racks 0 and 1 are the two edge switches of pod 0.
        assert topo.pod_of(0) == topo.pod_of(1)
        assert topo.distance(0, 1) == 2

    def test_cross_pod_distance_four(self):
        topo = FatTreeTopology(k=4)
        u, v = 0, topo.n_racks - 1
        assert topo.pod_of(u) != topo.pod_of(v)
        assert topo.distance(u, v) == 4

    def test_distance_values_only_two_or_four(self):
        topo = FatTreeTopology(k=6)
        values = {topo.distance(u, v) for u, v in topo.all_pairs()}
        assert values == {2.0, 4.0}

    def test_max_distance(self):
        topo = FatTreeTopology(n_racks=20)
        assert topo.max_distance() == 4

    def test_pod_of_consistent_with_k(self):
        topo = FatTreeTopology(k=4)
        pods = {topo.pod_of(r) for r in range(topo.n_racks)}
        assert pods == set(range(4))
