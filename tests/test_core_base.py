"""Tests for the OnlineBMatchingAlgorithm base-class cost accounting."""

import pytest

from repro.config import MatchingConfig
from repro.core import ObliviousRouting, RBMA
from repro.errors import SimulationError
from repro.types import Request


class TestCostAccounting:
    def test_unmatched_request_costs_path_length(self, small_leafspine):
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        outcome = algo.serve(Request(0, 5))
        assert outcome.routing_cost == 2.0
        assert outcome.reconfiguration_cost == 0.0
        assert not outcome.served_by_matching

    def test_matched_request_costs_one(self, small_leafspine):
        algo = RBMA(small_leafspine, MatchingConfig(b=2, alpha=2), rng=0)
        # alpha=2, l=2 -> k_e = 1, so the first request already installs the edge.
        algo.serve(Request(0, 5))
        outcome = algo.serve(Request(0, 5))
        assert outcome.served_by_matching
        assert outcome.routing_cost == 1.0

    def test_request_size_scales_routing_cost(self, small_leafspine):
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        outcome = algo.serve(Request(0, 3, size=2.5))
        assert outcome.routing_cost == pytest.approx(5.0)

    def test_reconfiguration_cost_charged_per_change(self, small_leafspine):
        config = MatchingConfig(b=2, alpha=2)
        algo = RBMA(small_leafspine, config, rng=0)
        outcome = algo.serve(Request(0, 5))
        # One edge added -> alpha charged once.
        assert outcome.edges_added == ((0, 5),)
        assert outcome.reconfiguration_cost == pytest.approx(config.alpha)

    def test_totals_accumulate(self, small_leafspine):
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        for _ in range(5):
            algo.serve(Request(1, 2))
        assert algo.requests_served == 5
        assert algo.total_routing_cost == pytest.approx(10.0)
        assert algo.total_cost == algo.total_routing_cost

    def test_matched_fraction(self, small_leafspine):
        algo = RBMA(small_leafspine, MatchingConfig(b=2, alpha=2), rng=0)
        for _ in range(10):
            algo.serve(Request(0, 1))
        assert algo.matched_fraction == pytest.approx(0.9)

    def test_matched_fraction_empty(self, small_leafspine):
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=1, alpha=1))
        assert algo.matched_fraction == 0.0

    def test_serve_all_returns_cost_delta(self, small_leafspine, uniform_trace):
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        cost = algo.serve_all(list(uniform_trace.requests()))
        assert cost == pytest.approx(algo.total_cost)
        assert cost == pytest.approx(2.0 * len(uniform_trace))

    def test_invalid_pair_rejected(self, small_leafspine):
        algo = ObliviousRouting(small_leafspine, MatchingConfig(b=2, alpha=4))
        with pytest.raises(Exception):
            algo.serve(Request(0, 99))

    def test_reset_clears_state(self, small_leafspine):
        algo = RBMA(small_leafspine, MatchingConfig(b=2, alpha=2), rng=0)
        algo.serve(Request(0, 1))
        algo.reset()
        assert algo.requests_served == 0
        assert algo.total_cost == 0.0
        assert len(algo.matching) == 0
        # Serving again works after the reset.
        algo.serve(Request(0, 1))
        assert algo.requests_served == 1

    def test_serve_outcome_total_cost(self, small_leafspine):
        algo = RBMA(small_leafspine, MatchingConfig(b=2, alpha=2), rng=0)
        outcome = algo.serve(Request(0, 5))
        assert outcome.total_cost == pytest.approx(
            outcome.routing_cost + outcome.reconfiguration_cost
        )
