"""Tests for Belady's offline optimal paging algorithm."""

import numpy as np
import pytest

from repro.errors import PagingError
from repro.paging import BeladyPaging, FIFOPaging, LRUPaging, offline_paging_cost


class TestBelady:
    def test_simple_optimal_choice(self):
        # With capacity 2 and sequence a b c a b, Belady evicts c's victim
        # optimally: faults are a, b, c and then nothing more is forced except
        # one of a/b that was evicted.
        sequence = ["a", "b", "c", "a", "b"]
        assert offline_paging_cost(sequence, 2) == 4

    def test_optimal_on_working_set(self):
        sequence = ["a", "b"] * 20
        assert offline_paging_cost(sequence, 2) == 2

    def test_never_worse_than_online_policies(self):
        rng = np.random.default_rng(4)
        sequence = rng.integers(0, 9, size=500).tolist()
        for k in (2, 3, 5):
            opt = offline_paging_cost(sequence, k)
            assert opt <= LRUPaging(k).serve_sequence(sequence)
            assert opt <= FIFOPaging(k).serve_sequence(sequence)

    def test_requires_declared_sequence_order(self):
        algo = BeladyPaging(2, ["a", "b", "c"])
        algo.request("a")
        with pytest.raises(PagingError):
            algo.request("c")

    def test_rejects_extra_requests(self):
        algo = BeladyPaging(2, ["a"])
        algo.request("a")
        with pytest.raises(PagingError):
            algo.request("a")

    def test_reset_allows_replay(self):
        sequence = ["a", "b", "c", "a"]
        algo = BeladyPaging(2, sequence)
        first = algo.serve_sequence(sequence)
        algo.reset()
        second = algo.serve_sequence(sequence)
        assert first == second

    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(8)
        sequence = rng.integers(0, 12, size=400).tolist()
        costs = [offline_paging_cost(sequence, k) for k in (1, 2, 4, 8, 12)]
        assert costs == sorted(costs, reverse=True)
