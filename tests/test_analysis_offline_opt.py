"""Tests for the exact offline dynamic-matching optimum."""

import pytest

from repro.analysis import optimal_dynamic_matching_cost
from repro.analysis.offline_opt import enumerate_feasible_matchings
from repro.config import MatchingConfig
from repro.core import BMA, RBMA, ObliviousRouting
from repro.errors import SolverError
from repro.topology import LeafSpineTopology, StarTopology
from repro.types import Request, as_requests


@pytest.fixture
def tiny_topology():
    return LeafSpineTopology(n_racks=4)  # all distances 2


class TestEnumeration:
    def test_counts_b1(self):
        # Pairs (0,1),(2,3),(0,2): valid 1-matchings: {}, each singleton, {(0,1),(2,3)}.
        states = enumerate_feasible_matchings([(0, 1), (2, 3), (0, 2)], 4, b=1)
        assert len(states) == 5

    def test_counts_b2(self):
        states = enumerate_feasible_matchings([(0, 1), (2, 3), (0, 2)], 4, b=2)
        assert len(states) == 8  # every subset is feasible with b=2


class TestOptimalCost:
    def test_no_requests(self, tiny_topology):
        assert optimal_dynamic_matching_cost([], tiny_topology, b=1, alpha=2) == 0.0

    def test_single_request_cheaper_to_route(self, tiny_topology):
        # One request of length 2 vs paying alpha=5 to reconfigure: route it.
        cost = optimal_dynamic_matching_cost([Request(0, 1)], tiny_topology, b=1, alpha=5)
        assert cost == pytest.approx(2.0)

    def test_repeated_requests_justify_matching(self, tiny_topology):
        # 10 requests to the same pair: install the edge once (alpha=4) and
        # serve each at cost 1 -> 14, versus 20 for routing everything.
        requests = as_requests([(0, 1)] * 10)
        cost = optimal_dynamic_matching_cost(requests, tiny_topology, b=1, alpha=4)
        assert cost == pytest.approx(4 + 10)

    def test_break_even_never_exceeds_routing_everything(self, tiny_topology):
        requests = as_requests([(0, 1), (2, 3), (0, 2), (1, 3)] * 3)
        cost = optimal_dynamic_matching_cost(requests, tiny_topology, b=1, alpha=3)
        oblivious_cost = 2.0 * len(requests)
        assert cost <= oblivious_cost

    def test_degree_bound_limits_benefit(self, tiny_topology):
        # Two hot pairs sharing node 0 cannot both be matched with b=1.
        requests = as_requests([(0, 1), (0, 2)] * 8)
        cost_b1 = optimal_dynamic_matching_cost(requests, tiny_topology, b=1, alpha=2)
        cost_b2 = optimal_dynamic_matching_cost(requests, tiny_topology, b=2, alpha=2)
        assert cost_b2 < cost_b1

    def test_monotone_in_alpha(self, tiny_topology):
        requests = as_requests([(0, 1)] * 6 + [(2, 3)] * 6)
        costs = [
            optimal_dynamic_matching_cost(requests, tiny_topology, b=1, alpha=a)
            for a in (1, 2, 4, 8)
        ]
        assert costs == sorted(costs)

    def test_lower_bounds_online_algorithms(self, tiny_topology):
        """Opt is never more expensive than any online algorithm (same b)."""
        requests = as_requests([(0, 1), (0, 2), (0, 1), (2, 3), (0, 1), (0, 2)] * 4)
        config = MatchingConfig(b=1, alpha=3)
        opt = optimal_dynamic_matching_cost(requests, tiny_topology, b=1, alpha=3)
        for algo in (
            RBMA(tiny_topology, config, rng=0),
            BMA(tiny_topology, config),
            ObliviousRouting(tiny_topology, config),
        ):
            algo.serve_all(requests)
            assert algo.total_cost >= opt - 1e-9

    def test_candidate_pair_guard(self, tiny_topology):
        requests = as_requests([(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        with pytest.raises(SolverError):
            optimal_dynamic_matching_cost(
                requests, tiny_topology, b=1, alpha=1, max_candidate_pairs=3
            )

    def test_star_lower_bound_distances(self):
        topo = StarTopology(n_racks=4, hub_is_rack=True)
        requests = as_requests([(0, 1)] * 5)
        # Hub-leaf distance is 1, so matching never helps: optimum just routes.
        cost = optimal_dynamic_matching_cost(requests, topo, b=1, alpha=2)
        assert cost == pytest.approx(5.0)
