"""Tests for the declarative runner, sweeps, and the parallel executor."""

import pytest

from repro.config import SweepConfig
from repro.errors import ConfigurationError
from repro.simulation import ExperimentRunner, RunSpec, run_specs_parallel, run_sweep
from repro.simulation.runner import execute_run_spec


SMALL_WORKLOAD = dict(n_nodes=12, n_requests=300)


def _spec(algorithm="rbma", b=2, **kwargs):
    return RunSpec(
        algorithm=algorithm,
        workload="zipf",
        b=b,
        alpha=4.0,
        workload_kwargs={**SMALL_WORKLOAD, "exponent": 1.3},
        checkpoints=5,
        **kwargs,
    )


class TestExecuteRunSpec:
    def test_basic_execution(self):
        result = execute_run_spec(_spec(seed=1))
        assert result.algorithm == "rbma"
        assert result.n_requests == 300
        assert result.workload == "zipf"
        assert result.topology.startswith("fat-tree")

    def test_seed_reproducibility(self):
        a = execute_run_spec(_spec(seed=3))
        b = execute_run_spec(_spec(seed=3))
        assert a.total_routing_cost == b.total_routing_cost

    def test_shared_trace_override(self):
        from repro.traffic import zipf_pair_trace

        trace = zipf_pair_trace(n_nodes=12, n_requests=200, seed=5)
        result = execute_run_spec(_spec(), trace=trace)
        assert result.n_requests == 200

    def test_alternative_topology(self):
        spec = _spec(topology="leaf-spine", seed=0)
        result = execute_run_spec(spec)
        assert result.topology.startswith("leaf-spine")

    def test_with_seed_copy(self):
        spec = _spec()
        assert spec.with_seed(9).seed == 9
        assert spec.seed is None


class TestExperimentRunner:
    def test_aggregates_repetitions(self):
        runner = ExperimentRunner(repetitions=2, base_seed=1)
        agg = runner.run(_spec())
        assert agg.repetitions == 2
        assert agg.algorithm == "rbma"

    def test_run_many(self):
        runner = ExperimentRunner(repetitions=1, base_seed=0)
        results = runner.run_many([_spec(algorithm="rbma"), _spec(algorithm="oblivious")])
        assert [r.algorithm for r in results] == ["rbma", "oblivious"]

    def test_compare_on_shared_trace(self):
        runner = ExperimentRunner(repetitions=1, base_seed=2)
        results = runner.compare_on_shared_trace(
            [_spec(algorithm="rbma", b=2), _spec(algorithm="oblivious", b=2)]
        )
        assert set(results) == {"rbma (b: 2)", "oblivious (b: 2)"}
        # Same workload and checkpoints, so the grids coincide.
        rbma, obl = results["rbma (b: 2)"], results["oblivious (b: 2)"]
        assert (rbma.series.requests == obl.series.requests).all()
        assert rbma.routing_cost_mean <= obl.routing_cost_mean

    def test_compare_requires_same_workload(self):
        runner = ExperimentRunner()
        other = RunSpec(algorithm="rbma", workload="uniform", b=2,
                        workload_kwargs=SMALL_WORKLOAD, checkpoints=5)
        with pytest.raises(ConfigurationError):
            runner.compare_on_shared_trace([_spec(), other])

    def test_repetition_validation(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(repetitions=0)


class TestSweep:
    def test_cross_product_results(self):
        sweep = SweepConfig(b_values=(1, 2), alpha_values=(4.0,), algorithms=("rbma", "oblivious"))
        results = run_sweep(sweep, workload="zipf", workload_kwargs=SMALL_WORKLOAD,
                            checkpoints=4, base_seed=1)
        assert len(results) == 4
        labels = {(r.algorithm, r.b) for r in results}
        assert labels == {("rbma", 1), ("rbma", 2), ("oblivious", 1), ("oblivious", 2)}

    def test_rejects_bad_repetitions(self):
        sweep = SweepConfig(b_values=(1,), algorithms=("oblivious",))
        with pytest.raises(ConfigurationError):
            run_sweep(sweep, workload="zipf", repetitions=0)


class TestParallel:
    def test_empty(self):
        assert run_specs_parallel([]) == []

    def test_single_worker_inline(self):
        results = run_specs_parallel([_spec(seed=0)], n_workers=1)
        assert len(results) == 1

    def test_multi_worker_matches_sequential(self):
        specs = [_spec(algorithm="oblivious", seed=1), _spec(algorithm="rbma", seed=1)]
        sequential = [execute_run_spec(s) for s in specs]
        parallel = run_specs_parallel(specs, n_workers=2)
        assert [r.algorithm for r in parallel] == [r.algorithm for r in sequential]
        for p, s in zip(parallel, sequential):
            assert p.total_routing_cost == pytest.approx(s.total_routing_cost)

    def test_invalid_worker_count(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_specs_parallel([_spec()], n_workers=0)
