"""Sharded execution: bit-identity, worker hygiene, and spec portability.

The sharding contract (see :mod:`repro.simulation.parallel`) is that moving
runs into worker processes may change *nothing* about the results: workers
rebuild traces deterministically from their specs, so a parallel figure panel
must be bit-identical to the sequential one.  Pool-spawning tests carry the
``parallel`` marker and are auto-skipped on single-CPU hosts (see
``tests/conftest.py``); the pure-logic tests (chunk sizing, trace cache,
pickle validation) always run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError, WorkerExecutionError
from repro.experiments import ExperimentSpec
from repro.simulation import ExperimentRunner, RunSpec, run_specs_parallel
from repro.simulation.parallel import (
    _cached_trace,
    _check_picklable,
    _init_worker,
    default_chunksize,
)


def _panel_specs(algorithms=("rbma", "bma", "oblivious", "rotor")):
    return [
        ExperimentSpec(
            algorithm={"name": name, "b": 3, "alpha": 4.0},
            traffic={"name": "zipf", "params": {"n_nodes": 10, "n_requests": 400}},
            simulation={"checkpoints": 5},
        )
        for name in algorithms
    ]


def _assert_series_identical(a, b, what):
    assert a.routing_cost_mean == b.routing_cost_mean, what
    assert np.array_equal(a.series.requests, b.series.requests), what
    assert np.array_equal(a.series.routing_cost, b.series.routing_cost), what
    assert np.array_equal(
        a.series.reconfiguration_cost, b.series.reconfiguration_cost
    ), what
    assert np.array_equal(a.series.matched_fraction, b.series.matched_fraction), what


# --------------------------------------------------------------------------- #
# Pure-logic pieces (no pool)
# --------------------------------------------------------------------------- #


def test_default_chunksize_balances_dispatch_and_cache_hits():
    # Many small specs: several consecutive specs per task ...
    assert default_chunksize(100, 4) == 6
    # ... but every worker still sees multiple chunks for load balancing.
    assert default_chunksize(100, 4) * 4 * 4 <= 100
    # Degenerate inputs clamp to 1 instead of 0.
    assert default_chunksize(1, 8) == 1
    assert default_chunksize(0, 8) == 1


def test_worker_trace_cache_returns_identical_workloads():
    _init_worker()  # start from an empty cache, as a fresh worker would
    spec = _panel_specs(["rbma"])[0].with_seed(13)
    first = _cached_trace(spec)
    second = _cached_trace(spec)
    assert second is first  # memoised within the process
    rebuilt = spec.build_trace()
    assert np.array_equal(first.sources, rebuilt.sources)
    assert np.array_equal(first.destinations, rebuilt.destinations)


def test_worker_trace_cache_never_caches_unseeded_specs():
    _init_worker()
    spec = _panel_specs(["rbma"])[0].with_seed(None)
    first = _cached_trace(spec)
    second = _cached_trace(spec)
    # Fresh entropy per run: caching would silently correlate repetitions.
    assert second is not first


def test_unpicklable_spec_is_rejected_before_dispatch():
    bad = RunSpec(
        algorithm="rbma",
        workload="zipf",
        b=2,
        workload_kwargs={"n_nodes": 8, "n_requests": 50},
        algorithm_kwargs={"paging_factory": lambda capacity, rng: None},
    )
    with pytest.raises(SimulationError, match="pickl"):
        _check_picklable([bad])


def test_single_worker_falls_back_to_in_process_execution():
    specs = [s.with_seed(3) for s in _panel_specs(["rbma", "oblivious"])]
    results = run_specs_parallel(specs, n_workers=1)
    assert [r.algorithm for r in results] == ["rbma", "oblivious"]


def _failing_spec() -> ExperimentSpec:
    """A spec that validates but fails inside the engine at run time."""
    return ExperimentSpec(
        algorithm={"name": "rbma", "b": 3, "alpha": 4.0},
        traffic={"name": "zipf", "params": {"n_nodes": 10, "n_requests": 40}},
        # Positions beyond the trace length pass config validation (the
        # trace length is unknown there) and explode inside run_simulation.
        simulation={"checkpoint_positions": [999]},
        seed=5,
    )


def test_worker_failure_names_the_failing_spec():
    """Regression: a failing run must identify its spec, not just the error.

    A 500-spec sweep dying with a bare "checkpoint_positions reach 999"
    used to leave no way to tell *which* spec was broken; the re-raised
    error must carry the spec's JSON (algorithm/topology/seed).
    """
    ok = _panel_specs(["rbma"])[0].with_seed(3)
    with pytest.raises(WorkerExecutionError) as excinfo:
        run_specs_parallel([ok, _failing_spec()], n_workers=1)
    message = str(excinfo.value)
    assert "failing spec" in message
    assert '"rbma"' in message and '"zipf"' in message
    assert '"seed": 5' in message
    assert "checkpoint_positions reach 999" in message
    # The original error class is named even though the exception object
    # itself would not survive a process boundary.
    assert "SimulationError" in message


@pytest.mark.parallel
def test_worker_failure_context_survives_the_process_boundary():
    """The same context must arrive intact from a real pool worker."""
    specs = [s.with_seed(3) for s in _panel_specs(["rbma", "oblivious"])]
    specs.append(_failing_spec())
    with pytest.raises(WorkerExecutionError) as excinfo:
        run_specs_parallel(specs, n_workers=2, chunksize=1)
    message = str(excinfo.value)
    assert "failing spec" in message
    assert '"seed": 5' in message


# --------------------------------------------------------------------------- #
# Pool-backed bit-identity (auto-skipped on single-CPU hosts)
# --------------------------------------------------------------------------- #


@pytest.mark.parallel
def test_compare_on_shared_trace_parallel_bit_identical():
    """Sharded figure panels must match sequential ones exactly.

    This is the engine-level guarantee the sharded benchmark pipeline rests
    on: per repetition every spec spawns the same trace seed, so a worker
    rebuilding the trace produces the byte-identical workload the sequential
    path shares in-process.
    """
    specs = _panel_specs(("rbma", "bma", "oblivious", "rotor", "predictive",
                          "hybrid", "uniform", "greedy"))
    sequential = ExperimentRunner(repetitions=3, base_seed=2023).compare_on_shared_trace(specs)
    parallel = ExperimentRunner(repetitions=3, base_seed=2023).compare_on_shared_trace(
        specs, n_workers=2
    )
    assert list(sequential) == list(parallel)
    for label in sequential:
        _assert_series_identical(sequential[label], parallel[label], label)


@pytest.mark.parallel
def test_run_many_parallel_bit_identical():
    specs = _panel_specs(("rbma", "bma"))
    runner_seq = ExperimentRunner(repetitions=2, base_seed=5)
    runner_par = ExperimentRunner(repetitions=2, base_seed=5)
    for seq, par in zip(
        runner_seq.run_many(specs), runner_par.run_many(specs, n_workers=2)
    ):
        assert seq.label == par.label
        _assert_series_identical(seq, par, seq.label)


@pytest.mark.parallel
def test_run_specs_parallel_preserves_order_with_chunking():
    specs = [s.with_seed(7) for s in _panel_specs(("rbma", "oblivious", "greedy"))]
    results = run_specs_parallel(specs * 2, n_workers=2, chunksize=2)
    assert [r.algorithm for r in results] == ["rbma", "oblivious", "greedy"] * 2
