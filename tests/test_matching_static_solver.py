"""Tests for the static maximum-weight b-matching solvers."""

import time

import numpy as np
import pytest

from repro.errors import SolverError
from repro.matching import (
    exact_max_weight_b_matching,
    greedy_b_matching,
    iterated_max_weight_b_matching,
    matching_weight,
)
from repro.matching.validation import check_b_matching


def _random_weights(n_nodes: int, n_pairs: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    weights = {}
    while len(weights) < n_pairs:
        u, v = rng.integers(0, n_nodes, size=2)
        if u != v:
            weights[(min(u, v), max(u, v))] = float(rng.uniform(0.5, 10))
    return weights


class TestGreedy:
    def test_simple_choice(self):
        weights = {(0, 1): 10.0, (1, 2): 5.0, (2, 3): 8.0}
        chosen = greedy_b_matching(weights, 4, b=1)
        assert chosen == {(0, 1), (2, 3)}

    def test_respects_degree_bound(self):
        weights = {(0, i): 10.0 - i for i in range(1, 6)}
        chosen = greedy_b_matching(weights, 6, b=2)
        check_b_matching(chosen, 6, 2)
        assert chosen == {(0, 1), (0, 2)}

    def test_ignores_non_positive_weights(self):
        weights = {(0, 1): 0.0, (2, 3): -1.0, (1, 2): 3.0}
        assert greedy_b_matching(weights, 4, b=1) == {(1, 2)}

    def test_half_approximation_on_random_instances(self):
        for seed in range(5):
            weights = _random_weights(6, 8, seed)
            exact = exact_max_weight_b_matching(weights, 6, b=2)
            greedy = greedy_b_matching(weights, 6, b=2)
            assert matching_weight(greedy, weights) >= 0.5 * matching_weight(exact, weights)

    def test_rejects_bad_b(self):
        with pytest.raises(SolverError):
            greedy_b_matching({(0, 1): 1.0}, 2, b=0)

    def test_rejects_out_of_range_pair(self):
        with pytest.raises(SolverError):
            greedy_b_matching({(0, 9): 1.0}, 4, b=1)


class TestIteratedBlossom:
    def test_b_one_is_max_weight_matching(self):
        weights = {(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}
        chosen = iterated_max_weight_b_matching(weights, 4, b=1)
        # Max weight matching picks (0,1)+(2,3) with weight 4 > (1,2) with 3.
        assert chosen == {(0, 1), (2, 3)}

    def test_valid_b_matching_on_random_instances(self):
        for seed in range(4):
            weights = _random_weights(8, 14, seed)
            for b in (1, 2, 3):
                chosen = iterated_max_weight_b_matching(weights, 8, b=b)
                check_b_matching(chosen, 8, b)

    def test_at_least_greedy_quality_typically(self):
        weights = _random_weights(8, 16, seed=3)
        blossom = iterated_max_weight_b_matching(weights, 8, b=2)
        exact = exact_max_weight_b_matching(weights, 8, b=2, max_edges=20)
        assert matching_weight(blossom, weights) >= 0.5 * matching_weight(exact, weights)

    def test_covers_all_weight_with_large_b(self):
        weights = {(0, 1): 1.0, (0, 2): 1.0, (0, 3): 1.0}
        chosen = iterated_max_weight_b_matching(weights, 4, b=3)
        assert chosen == set(weights)

    def test_empty_weights(self):
        assert iterated_max_weight_b_matching({}, 4, b=2) == set()


def _brute_force_exact(weights, n_nodes, b):
    """The original unpruned formulation, kept here as the test oracle."""
    from itertools import combinations

    canon = {}
    for (u, v), w in weights.items():
        if w > 0:
            pair = (min(u, v), max(u, v))
            canon[pair] = canon.get(pair, 0.0) + float(w)
    pairs = sorted(canon)
    best, best_weight = set(), 0.0
    for r in range(len(pairs) + 1):
        for subset in combinations(pairs, r):
            degrees = [0] * n_nodes
            feasible = True
            for u, v in subset:
                degrees[u] += 1
                degrees[v] += 1
                if degrees[u] > b or degrees[v] > b:
                    feasible = False
                    break
            if not feasible:
                continue
            total = sum(canon[p] for p in subset)
            if total > best_weight:
                best_weight = total
                best = set(subset)
    return best


class TestExact:
    def test_beats_or_matches_heuristics(self):
        for seed in range(4):
            weights = _random_weights(6, 9, seed)
            exact = exact_max_weight_b_matching(weights, 6, b=2)
            for heuristic in (
                greedy_b_matching(weights, 6, b=2),
                iterated_max_weight_b_matching(weights, 6, b=2),
            ):
                assert matching_weight(exact, weights) >= matching_weight(heuristic, weights) - 1e-9

    def test_respects_degree_bound(self):
        weights = {(0, 1): 5.0, (0, 2): 4.0, (0, 3): 3.0}
        exact = exact_max_weight_b_matching(weights, 4, b=1)
        assert exact == {(0, 1)}

    def test_guard_on_instance_size(self):
        weights = {(i, j): 1.0 for i in range(10) for j in range(i + 1, 10)}
        with pytest.raises(SolverError):
            exact_max_weight_b_matching(weights, 10, b=1, max_edges=10)

    def test_rejects_bad_b(self):
        with pytest.raises(SolverError):
            exact_max_weight_b_matching({(0, 1): 1.0}, 2, b=0)

    def test_pruned_enumeration_matches_brute_force(self):
        """The degree-prefix cutoffs must not change the chosen set.

        Ties between equal-weight optima resolve by enumeration order, so
        this compares *sets*, not just weights, against the original
        unpruned formulation.
        """
        for seed in range(8):
            n = 6
            weights = _random_weights(n, 10, seed)
            for b in (1, 2, 3):
                assert exact_max_weight_b_matching(weights, n, b) == \
                    _brute_force_exact(weights, n, b)

    def test_star_instance_at_the_size_guard_is_fast(self):
        """20 pairs sharing a hub: the prefix cutoff keeps this instant.

        The unpruned enumeration walks all 2^20 subsets here; the pruned one
        stops every branch at the hub's degree bound.
        """
        weights = {(0, i): float(i) for i in range(1, 21)}
        started = time.perf_counter()
        chosen = exact_max_weight_b_matching(weights, 21, b=2, max_edges=20)
        elapsed = time.perf_counter() - started
        assert chosen == {(0, 19), (0, 20)}
        assert elapsed < 2.0, f"pruned exact solver took {elapsed:.1f}s"


class TestMatchingWeight:
    def test_sums_selected_weights(self):
        weights = {(0, 1): 2.0, (2, 3): 3.5}
        assert matching_weight({(0, 1)}, weights) == 2.0
        assert matching_weight({(0, 1), (2, 3)}, weights) == 5.5

    def test_missing_edges_weigh_zero(self):
        assert matching_weight({(4, 5)}, {(0, 1): 2.0}) == 0.0

    def test_non_canonical_query_edges(self):
        weights = {(0, 1): 2.0, (2, 3): 3.5}
        assert matching_weight({(1, 0), (3, 2)}, weights) == 5.5

    def test_non_canonical_weight_keys(self):
        # Weight mappings with reversed keys still resolve per queried edge.
        assert matching_weight({(0, 1)}, {(1, 0): 2.0}) == 2.0

    def test_does_not_scan_the_whole_weight_mapping(self):
        """O(|edges|), not O(|weights|): a huge mapping must not slow a tiny query."""
        weights = {(i, j): 1.0 for i in range(300) for j in range(i + 1, 300)}
        started = time.perf_counter()
        for _ in range(2000):
            matching_weight([(0, 1)], weights)
        elapsed = time.perf_counter() - started
        assert elapsed < 1.0, f"2000 single-edge queries took {elapsed:.2f}s"
