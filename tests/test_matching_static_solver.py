"""Tests for the static maximum-weight b-matching solvers."""

import numpy as np
import pytest

from repro.errors import SolverError
from repro.matching import (
    exact_max_weight_b_matching,
    greedy_b_matching,
    iterated_max_weight_b_matching,
    matching_weight,
)
from repro.matching.validation import check_b_matching


def _random_weights(n_nodes: int, n_pairs: int, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    weights = {}
    while len(weights) < n_pairs:
        u, v = rng.integers(0, n_nodes, size=2)
        if u != v:
            weights[(min(u, v), max(u, v))] = float(rng.uniform(0.5, 10))
    return weights


class TestGreedy:
    def test_simple_choice(self):
        weights = {(0, 1): 10.0, (1, 2): 5.0, (2, 3): 8.0}
        chosen = greedy_b_matching(weights, 4, b=1)
        assert chosen == {(0, 1), (2, 3)}

    def test_respects_degree_bound(self):
        weights = {(0, i): 10.0 - i for i in range(1, 6)}
        chosen = greedy_b_matching(weights, 6, b=2)
        check_b_matching(chosen, 6, 2)
        assert chosen == {(0, 1), (0, 2)}

    def test_ignores_non_positive_weights(self):
        weights = {(0, 1): 0.0, (2, 3): -1.0, (1, 2): 3.0}
        assert greedy_b_matching(weights, 4, b=1) == {(1, 2)}

    def test_half_approximation_on_random_instances(self):
        for seed in range(5):
            weights = _random_weights(6, 8, seed)
            exact = exact_max_weight_b_matching(weights, 6, b=2)
            greedy = greedy_b_matching(weights, 6, b=2)
            assert matching_weight(greedy, weights) >= 0.5 * matching_weight(exact, weights)

    def test_rejects_bad_b(self):
        with pytest.raises(SolverError):
            greedy_b_matching({(0, 1): 1.0}, 2, b=0)

    def test_rejects_out_of_range_pair(self):
        with pytest.raises(SolverError):
            greedy_b_matching({(0, 9): 1.0}, 4, b=1)


class TestIteratedBlossom:
    def test_b_one_is_max_weight_matching(self):
        weights = {(0, 1): 2.0, (1, 2): 3.0, (2, 3): 2.0}
        chosen = iterated_max_weight_b_matching(weights, 4, b=1)
        # Max weight matching picks (0,1)+(2,3) with weight 4 > (1,2) with 3.
        assert chosen == {(0, 1), (2, 3)}

    def test_valid_b_matching_on_random_instances(self):
        for seed in range(4):
            weights = _random_weights(8, 14, seed)
            for b in (1, 2, 3):
                chosen = iterated_max_weight_b_matching(weights, 8, b=b)
                check_b_matching(chosen, 8, b)

    def test_at_least_greedy_quality_typically(self):
        weights = _random_weights(8, 16, seed=3)
        blossom = iterated_max_weight_b_matching(weights, 8, b=2)
        exact = exact_max_weight_b_matching(weights, 8, b=2, max_edges=20)
        assert matching_weight(blossom, weights) >= 0.5 * matching_weight(exact, weights)

    def test_covers_all_weight_with_large_b(self):
        weights = {(0, 1): 1.0, (0, 2): 1.0, (0, 3): 1.0}
        chosen = iterated_max_weight_b_matching(weights, 4, b=3)
        assert chosen == set(weights)

    def test_empty_weights(self):
        assert iterated_max_weight_b_matching({}, 4, b=2) == set()


class TestExact:
    def test_beats_or_matches_heuristics(self):
        for seed in range(4):
            weights = _random_weights(6, 9, seed)
            exact = exact_max_weight_b_matching(weights, 6, b=2)
            for heuristic in (
                greedy_b_matching(weights, 6, b=2),
                iterated_max_weight_b_matching(weights, 6, b=2),
            ):
                assert matching_weight(exact, weights) >= matching_weight(heuristic, weights) - 1e-9

    def test_respects_degree_bound(self):
        weights = {(0, 1): 5.0, (0, 2): 4.0, (0, 3): 3.0}
        exact = exact_max_weight_b_matching(weights, 4, b=1)
        assert exact == {(0, 1)}

    def test_guard_on_instance_size(self):
        weights = {(i, j): 1.0 for i in range(10) for j in range(i + 1, 10)}
        with pytest.raises(SolverError):
            exact_max_weight_b_matching(weights, 10, b=1, max_edges=10)


class TestMatchingWeight:
    def test_sums_selected_weights(self):
        weights = {(0, 1): 2.0, (2, 3): 3.5}
        assert matching_weight({(0, 1)}, weights) == 2.0
        assert matching_weight({(0, 1), (2, 3)}, weights) == 5.5

    def test_missing_edges_weigh_zero(self):
        assert matching_weight({(4, 5)}, {(0, 1): 2.0}) == 0.0
