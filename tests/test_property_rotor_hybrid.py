"""Property-based tests for the rotor schedule and the extension algorithms."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import MatchingConfig
from repro.core import HybridBMA, PredictiveBMA, RotorBMA, round_robin_schedule
from repro.matching.validation import check_b_matching
from repro.topology import LeafSpineTopology
from repro.types import Request, canonical_pair

N_NODES = 8
TOPOLOGY = LeafSpineTopology(n_racks=N_NODES)

request_sequences = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_NODES - 1),
        st.integers(min_value=0, max_value=N_NODES - 1),
    ).filter(lambda p: p[0] != p[1]),
    min_size=1,
    max_size=60,
)


@given(n=st.integers(min_value=2, max_value=20))
@settings(max_examples=40, deadline=None)
def test_round_robin_schedule_is_a_partition_of_all_pairs(n):
    schedule = round_robin_schedule(n)
    all_slot_pairs = [pair for slot in schedule for pair in slot]
    expected = {canonical_pair(u, v) for u in range(n) for v in range(u + 1, n)}
    assert len(all_slot_pairs) == len(set(all_slot_pairs))
    assert set(all_slot_pairs) == expected
    for slot in schedule:
        endpoints = [x for pair in slot for x in pair]
        assert len(endpoints) == len(set(endpoints))


@given(pairs=request_sequences, b=st.integers(min_value=1, max_value=4),
       period=st.integers(min_value=1, max_value=20))
@settings(max_examples=40, deadline=None)
def test_rotor_always_feasible_and_consistent(pairs, b, period):
    config = MatchingConfig(b=b, alpha=2.0)
    algo = RotorBMA(TOPOLOGY, config, period=period)
    for u, v in pairs:
        algo.serve(Request(u, v))
        check_b_matching(algo.matching.edges, N_NODES, b)
        assert len(algo.installed_slots) == min(b, algo.n_slots)


@given(pairs=request_sequences, b=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_extension_algorithms_always_feasible(pairs, b):
    config = MatchingConfig(b=b, alpha=2.0)
    for algo in (
        PredictiveBMA(TOPOLOGY, config, period=10, window=30),
        HybridBMA(TOPOLOGY, config, rng=0, period=10, window=30),
    ):
        for u, v in pairs:
            algo.serve(Request(u, v))
            check_b_matching(algo.matching.edges, N_NODES, b)


@given(pairs=request_sequences, b=st.integers(min_value=1, max_value=3))
@settings(max_examples=25, deadline=None)
def test_hybrid_cost_accounting_matches_matching_counters(pairs, b):
    config = MatchingConfig(b=b, alpha=3.0)
    algo = HybridBMA(TOPOLOGY, config, rng=1, period=15, window=40)
    for u, v in pairs:
        algo.serve(Request(u, v))
    changes = algo.matching.additions + algo.matching.removals
    assert algo.total_reconfiguration_cost == changes * 3.0
