#!/usr/bin/env python
"""A JSON-defined grid sweep, end to end.

The whole experiment grid lives in one JSON document: a base
:class:`repro.ExperimentSpec` plus a ``grid`` of dotted spec fields to sweep
(cartesian product).  The script parses it, expands the grid with
:func:`repro.expand_grid`, executes everything with
:func:`repro.run_experiments` (each spec repeating with seeds spawned from
its base seed), and prints the comparison table — no imperative experiment
wiring anywhere.

Run with::

    python examples/spec_driven_sweep.py
"""

import json

from repro import ExperimentSpec, expand_grid, run_experiments
from repro.analysis import format_comparison_table

#: Everything about the sweep, as data.  This could equally live in a file
#: checked into an experiments repository.
SWEEP_DOCUMENT = """
{
  "base": {
    "algorithm": {"name": "rbma", "b": 4, "alpha": 15},
    "traffic": {"name": "facebook-web",
                "params": {"n_nodes": 50, "n_requests": 8000}},
    "topology": {"name": "fat-tree"},
    "simulation": {"checkpoints": 8},
    "repeats": 2,
    "seed": 2023
  },
  "grid": {
    "algorithm.name": ["rbma", "bma", "oblivious"],
    "algorithm.b": [4, 8]
  }
}
"""


def main() -> None:
    document = json.loads(SWEEP_DOCUMENT)
    base = ExperimentSpec.from_dict(document["base"])
    specs = expand_grid(base, document["grid"])
    print(f"expanded {len(specs)} experiments "
          f"({base.repeats} repetitions each, seeds spawned from {base.seed}):")
    for spec in specs:
        print(f"  - {spec.label}")

    results = run_experiments(specs)

    by_label = {result.label: result for result in results}
    oblivious_label = next(label for label in by_label if label.startswith("oblivious"))
    print()
    print(format_comparison_table(by_label, oblivious_label=oblivious_label))
    print()
    print("Every result carries its originating spec; for example, the first")
    print("row can be replayed exactly with:")
    print(f"  ExperimentSpec.from_dict(result.spec)  # label: {results[0].label}")


if __name__ == "__main__":
    main()
