#!/usr/bin/env python
"""Sharding a figure panel across worker processes, with proof of bit-identity.

Every figure in the paper is a grid of independent (algorithm × degree-bound
× repetition) runs; the simulation *within* a run stays sequential (as in the
paper), but the grid itself shards across a process pool.  This script builds
a small Figure-1-style panel, runs it sequentially and sharded over workers,
verifies the two produce *identical* cost series (workers rebuild the shared
trace deterministically from their specs — see
:mod:`repro.simulation.parallel` for the sharding model), and reports the
wall-clock for both along with the parallel efficiency.

It also demonstrates ``checkpoint_positions``: the panel records its series
at log-spaced request counts (via
:func:`repro.simulation.log_spaced_checkpoints`), the x-axis used by the
log-scale figures in related work.

Run with::

    python examples/parallel_figures.py [n_workers]
"""

import sys
import time

import numpy as np

from repro import ExperimentSpec
from repro.simulation import ExperimentRunner, log_spaced_checkpoints
from repro.simulation.parallel import default_worker_count

N_REQUESTS = 12_000
REPETITIONS = 3


def panel_specs() -> list[ExperimentSpec]:
    """An abridged Figure-1 panel: R-BMA and BMA over three degree bounds."""
    base = ExperimentSpec(
        algorithm={"name": "rbma", "b": 6, "alpha": 15},
        traffic={"name": "facebook-database",
                 "params": {"n_nodes": 50, "n_requests": N_REQUESTS}},
        simulation={"checkpoint_positions": log_spaced_checkpoints(N_REQUESTS, 8)},
    )
    return base.expand({"algorithm.name": ["rbma", "bma"],
                        "algorithm.b": [6, 12, 18]})


def run_panel(n_workers: int):
    runner = ExperimentRunner(repetitions=REPETITIONS, base_seed=2023)
    started = time.perf_counter()
    results = runner.compare_on_shared_trace(panel_specs(), n_workers=n_workers)
    return results, time.perf_counter() - started


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else default_worker_count()

    sequential, seq_seconds = run_panel(n_workers=1)
    sharded, par_seconds = run_panel(n_workers=workers)

    for label in sequential:
        assert np.array_equal(
            sequential[label].series.routing_cost, sharded[label].series.routing_cost
        ), f"sharded run diverged for {label}"
    print(f"{len(sequential)} configurations x {REPETITIONS} repetitions, "
          f"log-spaced checkpoints {log_spaced_checkpoints(N_REQUESTS, 8)}")
    print("sharded costs are bit-identical to sequential ones\n")

    speedup = seq_seconds / par_seconds
    print(f"sequential      : {seq_seconds:6.2f}s")
    print(f"sharded ({workers:2d} w)  : {par_seconds:6.2f}s   "
          f"speedup {speedup:4.2f}x   efficiency {speedup / max(1, workers):4.2f}")
    if workers == 1:
        print("(single worker: pool skipped; run on a multi-core machine or pass "
              "an explicit worker count to see the fan-out)")

    final = {label: agg.routing_cost_mean for label, agg in sequential.items()}
    width = max(len(label) for label in final)
    print("\nfinal routing cost (mean over repetitions):")
    for label, cost in sorted(final.items(), key=lambda kv: kv[1]):
        print(f"  {label:<{width}}  {cost:12,.0f}")


if __name__ == "__main__":
    main()
