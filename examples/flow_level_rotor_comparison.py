#!/usr/bin/env python
"""Flow-level workloads and the demand-oblivious rotor baseline.

Two extensions beyond the paper's evaluation in one example:

1. **Flow-level traffic.**  Real datacenter demand arrives as flows with
   heavy-tailed sizes; :mod:`repro.traffic.flows` samples mice-and-elephants
   flows from a skewed traffic matrix and expands them into the request model
   the algorithms consume.
2. **Demand-oblivious baseline.**  RotorNet/Sirius-style designs rotate
   through a fixed schedule of matchings without looking at demand.
   Comparing R-BMA against :class:`repro.core.RotorBMA` isolates how much of
   the benefit comes from demand-awareness rather than from having optical
   links at all.

Run with::

    python examples/flow_level_rotor_comparison.py
"""

from repro import MatchingConfig, run_simulation
from repro.core import RBMA, ObliviousRouting, RotorBMA
from repro.topology import FatTreeTopology
from repro.traffic import TrafficMatrix, flows_to_trace, generate_flows
from repro.traffic.microsoft import projector_style_matrix
from repro.traffic.stats import compute_trace_statistics


def build_flow_trace(n_racks: int, skewed: bool, seed: int = 0):
    """Generate a flow-level trace from either a skewed or a uniform matrix."""
    if skewed:
        matrix = projector_style_matrix(n_nodes=n_racks, seed=seed)
        label = "skewed (ProjecToR-like) flow endpoints"
    else:
        matrix = TrafficMatrix.uniform(n_racks)
        label = "uniform flow endpoints"
    flows = generate_flows(matrix, n_flows=1_200, mean_flow_size=25,
                           elephant_fraction=0.05, elephant_multiplier=25, seed=seed)
    trace = flows_to_trace(flows, n_nodes=n_racks, name=f"flows-{'skewed' if skewed else 'uniform'}",
                           seed=seed)
    return trace, label


def main() -> None:
    n_racks = 64
    topology = FatTreeTopology(n_racks=n_racks)
    config = MatchingConfig(b=8, alpha=15)

    for skewed in (True, False):
        trace, label = build_flow_trace(n_racks, skewed)
        stats = compute_trace_statistics(trace)
        print(f"\n=== {label} ===")
        print(f"{len(trace):,} requests from 1,200 flows; "
              f"top-10% pair share {stats.top10pct_share:.0%}, "
              f"re-reference rate {stats.rereference_rate:.0%}")
        print(f"{'algorithm':<12} {'routing cost':>14} {'vs oblivious':>13} {'matched':>9}")
        oblivious_cost = None
        for name, algorithm in (
            ("oblivious", ObliviousRouting(topology, config)),
            ("rotor", RotorBMA(topology, config, period=200)),
            ("rbma", RBMA(topology, config, rng=0)),
        ):
            result = run_simulation(algorithm, trace)
            if name == "oblivious":
                oblivious_cost = result.total_routing_cost
            reduction = 1.0 - result.total_routing_cost / oblivious_cost
            print(f"{name:<12} {result.total_routing_cost:>14,.0f} {reduction:>12.1%} "
                  f"{result.matched_fraction:>8.1%}")

    print()
    print("The demand-aware R-BMA far outperforms the demand-oblivious rotor on both")
    print("workloads: flow-level traffic is temporally concentrated (a flow keeps")
    print("re-using its pair) even when the flow *endpoints* are uniform, and only a")
    print("demand-aware algorithm can follow that.  The rotor only helps a pair while")
    print("its slot happens to be installed.  For the per-request i.i.d. uniform case,")
    print("where the rotor catches up, see the A5 ablation benchmark.")


if __name__ == "__main__":
    main()
