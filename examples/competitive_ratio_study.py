#!/usr/bin/env python
"""Empirical competitive-ratio study on small adversarial instances.

The paper proves that randomization buys an exponential improvement in the
competitive ratio: O(log b) for R-BMA versus Θ(b) for the best deterministic
algorithm.  Competitive ratios are worst-case quantities, so they cannot be
read off the datacenter-trace simulations; instead this example measures them
directly on the lower-bound construction (paging embedded on a star, Lemma 1)
where the exact offline optimum is computable by dynamic programming.

Run with::

    python examples/competitive_ratio_study.py
"""

from repro.analysis import empirical_competitive_ratio, round_robin_adversary_trace
from repro.config import MatchingConfig
from repro.core import BMA, RBMA, GreedyBMA
from repro.paging.bounds import harmonic_number
from repro.topology import StarTopology


def study(b_values=(2, 3, 4), alpha: float = 3.0, n_blocks: int = 40, trials: int = 10) -> None:
    """Measure ratios for each b and print them next to the theory."""
    print(f"{'b':>3} {'opt':>7} {'R-BMA':>8} {'BMA':>8} {'Greedy':>8} {'2·H_b':>7}")
    for b in b_values:
        topology = StarTopology(n_racks=b + 1, hub_is_rack=True)
        config = MatchingConfig(b=b, alpha=alpha)
        trace = round_robin_adversary_trace(b=b, n_blocks=n_blocks, alpha=alpha)
        requests = list(trace.requests())

        rbma = empirical_competitive_ratio(
            lambda: RBMA(topology, config, rng=b), requests, topology, config, trials=trials
        )
        bma = empirical_competitive_ratio(
            lambda: BMA(topology, config), requests, topology, config, trials=1
        )
        greedy = empirical_competitive_ratio(
            lambda: GreedyBMA(topology, config), requests, topology, config, trials=1
        )
        print(
            f"{b:>3} {rbma.offline_cost:>7.1f} {rbma.ratio:>8.2f} {bma.ratio:>8.2f} "
            f"{greedy.ratio:>8.2f} {2 * harmonic_number(b):>7.2f}"
        )
    print()
    print("The round-robin adversary cycles through b+1 hub-leaf pairs; any online")
    print("algorithm keeps missing one of them.  The randomized algorithm's measured")
    print("ratio grows slowly with b (logarithmically in the limit), while the")
    print("deterministic algorithms' ratios do not improve — the separation the")
    print("paper proves in Theorems 3 and 4.")


if __name__ == "__main__":
    study()
