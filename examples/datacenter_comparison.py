#!/usr/bin/env python
"""Compare all algorithms on the paper's three Facebook-like workloads.

Reproduces the structure of the paper's evaluation at laptop scale: for each
cluster type (database, web service, Hadoop) the script replays the same
workload through R-BMA, BMA, SO-BMA, Greedy and Oblivious, and prints a
summary table with the routing-cost reduction and runtime of each algorithm.

Run with::

    python examples/datacenter_comparison.py [n_requests]
"""

import sys

from repro import ExperimentSpec
from repro.analysis import format_comparison_table
from repro.simulation import ExperimentRunner


def compare_cluster(workload: str, n_requests: int, b: int = 12, alpha: float = 40.0) -> None:
    """Run the algorithm comparison for one cluster workload and print it."""
    base = ExperimentSpec(
        algorithm={"name": "rbma", "b": b, "alpha": alpha},
        traffic={"name": workload, "params": {"n_nodes": 100, "n_requests": n_requests}},
        simulation={"checkpoints": 8},
    )
    specs = base.expand(
        {"algorithm.name": ["rbma", "bma", "so-bma", "greedy", "oblivious"]}
    )
    runner = ExperimentRunner(repetitions=1, base_seed=42)
    results = runner.compare_on_shared_trace(specs)
    oblivious_label = next(label for label in results if label.startswith("oblivious"))
    print()
    print(f"=== {workload} ({n_requests:,} requests, b = {b}, alpha = {alpha:.0f}) ===")
    print(format_comparison_table(results, oblivious_label=oblivious_label))


def main() -> None:
    n_requests = int(sys.argv[1]) if len(sys.argv) > 1 else 20_000
    for workload in ("facebook-database", "facebook-web", "facebook-hadoop"):
        compare_cluster(workload, n_requests)
    print()
    print("Reading guide: R-BMA should sit close to BMA on routing cost, both well")
    print("below Oblivious; SO-BMA benefits from seeing the whole trace in advance;")
    print("Greedy falls behind once its eviction-free matching fills up.")


if __name__ == "__main__":
    main()
