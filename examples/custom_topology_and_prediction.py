#!/usr/bin/env python
"""Use a custom fixed network and the prediction-augmented extension.

Two things the core paper leaves as extensions are shown here:

1. R-BMA on a *non-fat-tree* fixed network — a random-regular (expander)
   fabric and a ring — illustrating that the algorithm only needs shortest-
   path lengths from the topology abstraction.
2. The prediction-augmented algorithm from §5's future-work discussion
   (:class:`repro.core.PredictiveBMA`), compared against R-BMA on a workload
   with strong temporal structure, to see how much headroom predictions give.

Run with::

    python examples/custom_topology_and_prediction.py
"""

from repro import MatchingConfig, run_simulation
from repro.core import PredictiveBMA, RBMA, ObliviousRouting
from repro.topology import ExpanderTopology, RingTopology
from repro.traffic import hadoop_trace


def run_on(topology, trace, label: str) -> None:
    """Run R-BMA, PredictiveBMA, and Oblivious on one topology and print a summary."""
    config = MatchingConfig(b=8, alpha=40)
    rows = []
    for name, algorithm in (
        ("rbma", RBMA(topology, config, rng=0)),
        ("predictive", PredictiveBMA(topology, config, period=1_000, window=4_000)),
        ("oblivious", ObliviousRouting(topology, config)),
    ):
        result = run_simulation(algorithm, trace)
        rows.append((name, result))
    oblivious_cost = rows[-1][1].total_routing_cost
    print(f"\n--- {label} (mean rack distance {topology.mean_distance():.2f} hops) ---")
    print(f"{'algorithm':<12} {'routing cost':>14} {'vs oblivious':>13} {'matched':>9}")
    for name, result in rows:
        reduction = 1.0 - result.total_routing_cost / oblivious_cost
        print(f"{name:<12} {result.total_routing_cost:>14,.0f} {reduction:>12.1%} "
              f"{result.matched_fraction:>8.1%}")


def main() -> None:
    n_racks = 64
    trace = hadoop_trace(n_nodes=n_racks, n_requests=25_000, seed=3)
    print(f"Workload: {trace.name}, {len(trace):,} requests over {n_racks} racks")

    run_on(ExpanderTopology(n_racks=n_racks, degree=4, seed=7), trace,
           "random-regular expander fabric (Jellyfish-like)")
    run_on(RingTopology(n_racks=n_racks), trace, "ring fabric (large diameter)")

    print()
    print("On the short-diameter expander the oblivious baseline is already decent,")
    print("so reconfiguration buys less; on the ring the fixed paths are long and a")
    print("demand-aware matching pays off dramatically.  The prediction-augmented")
    print("variant reconfigures only at fixed periods, so with these settings it")
    print("lags R-BMA between reconfiguration points — predictions need to be both")
    print("accurate and frequent to beat the purely online algorithm (cf. §5 of the")
    print("paper); tune `period`/`window` to explore that trade-off.")


if __name__ == "__main__":
    main()
