#!/usr/bin/env python
"""Analyse the structure of the synthetic datacenter workloads.

The paper's discussion hinges on two trace properties: spatial skew (a few
rack pairs carry most of the traffic) and temporal structure (bursty
re-references).  This example generates each of the four paper workloads,
computes the structure statistics from :mod:`repro.traffic.stats`, and shows
how they predict which algorithm wins — SO-BMA thrives on spatial skew alone,
the online algorithms additionally exploit temporal structure.

Run with::

    python examples/trace_analysis.py
"""

from repro.traffic import (
    compute_trace_statistics,
    database_trace,
    hadoop_trace,
    microsoft_trace,
    save_trace_csv,
    web_service_trace,
)


def main() -> None:
    generators = {
        "facebook-database": lambda: database_trace(n_nodes=100, n_requests=30_000, seed=1),
        "facebook-web": lambda: web_service_trace(n_nodes=100, n_requests=30_000, seed=1),
        "facebook-hadoop": lambda: hadoop_trace(n_nodes=100, n_requests=30_000, seed=1),
        "microsoft": lambda: microsoft_trace(n_nodes=50, n_requests=30_000, seed=1),
    }
    header = (f"{'workload':<20} {'distinct pairs':>14} {'top-10% share':>13} "
              f"{'norm. entropy':>13} {'re-ref rate':>11}")
    print(header)
    print("-" * len(header))
    for name, generator in generators.items():
        trace = generator()
        stats = compute_trace_statistics(trace)
        print(
            f"{name:<20} {stats.n_distinct_pairs:>14,} {stats.top10pct_share:>12.1%} "
            f"{stats.normalized_entropy:>13.2f} {stats.rereference_rate:>11.1%}"
        )

    print()
    print("Interpretation:")
    print(" * low normalised entropy / high top-10% share  -> strong spatial skew,")
    print("   which a static offline matching (SO-BMA) can already exploit;")
    print(" * high re-reference rate -> temporal structure, which only the online")
    print("   algorithms (R-BMA, BMA) can follow as the hot pairs drift;")
    print(" * the Microsoft workload is skewed but i.i.d., so its re-reference rate")
    print("   is explained by skew alone — exactly why SO-BMA wins Figure 4c.")

    # Persist one workload so the CSV round-trip is demonstrated.
    trace = database_trace(n_nodes=100, n_requests=5_000, seed=1)
    out = "facebook_database_sample.csv"
    save_trace_csv(trace, out)
    print()
    print(f"Wrote a 5,000-request sample of the database workload to ./{out}")


if __name__ == "__main__":
    main()
