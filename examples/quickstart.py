#!/usr/bin/env python
"""Quickstart: run R-BMA on a synthetic datacenter workload.

The experiment is a declarative :class:`repro.ExperimentSpec` — a plain-data
description of the topology, workload and algorithm that round-trips through
JSON (``python -m repro run <file>`` runs the identical experiment).  The
script runs the paper's randomized online b-matching algorithm (R-BMA)
against the oblivious baseline on a Facebook-database-like workload over a
100-rack fat-tree, and prints the routing-cost series and the final
reduction — a miniature version of the paper's Figure 1a.

Run with::

    python examples/quickstart.py
"""

from repro import ExperimentSpec
from repro.analysis import format_series_table, routing_cost_reduction


def main() -> None:
    rbma_spec = ExperimentSpec(
        name="R-BMA (b: 12)",
        algorithm={"name": "rbma", "b": 12, "alpha": 40},
        traffic={"name": "facebook-database",
                 "params": {"n_nodes": 100, "n_requests": 30_000}},
        topology={"name": "fat-tree"},
        simulation={"checkpoints": 10},
        seed=0,
    )
    oblivious_spec = rbma_spec.expand({"algorithm.name": ["oblivious"]})[0]

    print("Experiment as JSON (feed this to `python -m repro run <file>`):")
    print(rbma_spec.to_json())

    # .run() executes every repetition (here: one) and aggregates; the same
    # spec always reproduces the same result because trace and algorithm
    # seeds are spawned deterministically from the base seed.
    rbma_result = rbma_spec.run()
    oblivious_result = oblivious_spec.run()

    results = {
        rbma_spec.label: rbma_result,
        "Oblivious": oblivious_result,
    }
    print()
    print(format_series_table(results, metric="routing_cost",
                              title="Cumulative routing cost vs. #requests"))
    reduction = routing_cost_reduction(rbma_result, oblivious_result)
    print()
    print(f"R-BMA routing-cost reduction vs. oblivious routing: {100 * reduction:.1f}%")
    print(f"Requests served over reconfigurable links: "
          f"{100 * rbma_result.matched_fraction_mean:.1f}%")


if __name__ == "__main__":
    main()
