#!/usr/bin/env python
"""Quickstart: run R-BMA on a synthetic datacenter workload.

This example builds a 100-rack fat-tree, generates a Facebook-database-like
workload, runs the paper's randomized online b-matching algorithm (R-BMA)
against the oblivious baseline, and prints the routing-cost series and the
final reduction — a miniature version of the paper's Figure 1a.

Run with::

    python examples/quickstart.py
"""

from repro import MatchingConfig, RBMA, ObliviousRouting, SimulationConfig, run_simulation
from repro.analysis import format_series_table, routing_cost_reduction
from repro.simulation import aggregate_runs
from repro.topology import FatTreeTopology
from repro.traffic import database_trace


def main() -> None:
    n_racks = 100
    topology = FatTreeTopology(n_racks=n_racks)
    print(f"Fixed network: {topology.name}, max rack distance = {topology.max_distance():.0f} hops")

    trace = database_trace(n_nodes=n_racks, n_requests=30_000, seed=0)
    print(f"Workload: {trace.name}, {len(trace):,} requests over {trace.n_nodes} racks")

    config = MatchingConfig(b=12, alpha=40)
    sim = SimulationConfig(checkpoints=10, seed=0)

    rbma = RBMA(topology, config, rng=0)
    rbma_result = run_simulation(rbma, trace, sim)

    oblivious = ObliviousRouting(topology, config)
    oblivious_result = run_simulation(oblivious, trace, sim)

    results = {
        "R-BMA (b: 12)": aggregate_runs([rbma_result]),
        "Oblivious": aggregate_runs([oblivious_result]),
    }
    print()
    print(format_series_table(results, metric="routing_cost",
                              title="Cumulative routing cost vs. #requests"))
    reduction = routing_cost_reduction(results["R-BMA (b: 12)"], results["Oblivious"])
    print()
    print(f"R-BMA routing-cost reduction vs. oblivious routing: {100 * reduction:.1f}%")
    print(f"Requests served over reconfigurable links: {100 * rbma_result.matched_fraction:.1f}%")
    print(f"Reconfigurations paid for: "
          f"{rbma_result.total_reconfiguration_cost / config.alpha:.0f} edge changes")


if __name__ == "__main__":
    main()
