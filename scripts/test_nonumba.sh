#!/bin/sh
# nonumba CI tier: run the kernel differential harness with the compiled
# backend masked out (REPRO_NO_NUMBA=1, honoured by the backend gate in
# repro.matching.numba_bmatching.numba_backend_active), guaranteeing the
# numba -> fast fallback path stays exercised even on hosts where numba
# installs fine.  Under this mask:
#   * make_matching("numba") returns the pure-Python fast kernel (with a
#     one-time warning) — the fallback tests in test_numba_backend.py
#     assert exactly that;
#   * the "numba" legs of the differential, golden-pin, and degenerate
#     shape matrices resolve to the fallback, so they certify that specs
#     pinning matching_backend="numba" stay green without numba;
#   * the static solver tier (tests/test_solver_backends.py) runs with the
#     same mask, so the solver_backend="numba" -> "array" fallback and the
#     nx/array differential harness are certified on numba-less hosts too;
#   * the rng tier (tests/test_rng_counter.py) runs with the mask, so the
#     pure-integer Philox pipeline (whose body compiles under numba) stays
#     bit-identical to NumPy when it executes as plain numpy arithmetic,
#     and the numba drive-path legs of the mode differential certify the
#     fallback for both rng modes.
# Extra pytest arguments are passed through.
set -eu
cd "$(dirname "$0")/.."
REPRO_NO_NUMBA=1 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest -q \
    tests/test_differential_matching.py \
    tests/test_numba_backend.py \
    tests/test_serve_batch_degenerate.py \
    tests/test_regression_pins.py \
    tests/test_solver_backends.py \
    tests/test_rng_counter.py \
    "$@"
