#!/bin/sh
# stateful-rng CI tier: run the randomness-sensitive suites with the legacy
# stateful rng mode forced (REPRO_RNG_MODE=stateful, honoured by
# repro.core.rng.resolve_rng_mode for every config that leaves rng_mode
# unpinned), certifying that the pre-counter draw path stays a first-class
# citizen now that "counter" is the library default:
#   * the rng tier (tests/test_rng_counter.py) — its mode-differential
#     matrix pins stateful self-consistency across request-by-request,
#     batched, and streamed replay, and its env test asserts this very knob
#     resolves identically to rng_mode="stateful";
#   * the golden pins — the stateful legs replay the pre-counter pins
#     byte-identically by construction, and the counter legs pin their mode
#     explicitly, so they must be immune to the env default;
#   * the streaming tier — chunk-invariance of randomized replay must hold
#     under carried-generator forking just as it does for counter draws.
# Extra pytest arguments are passed through.
set -eu
cd "$(dirname "$0")/.."
REPRO_RNG_MODE=stateful PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest -q \
    tests/test_rng_counter.py \
    tests/test_regression_pins.py \
    tests/test_streaming_engine.py \
    tests/test_core_uniform.py \
    tests/test_core_rbma.py \
    tests/test_paging_marking.py \
    tests/test_paging_policies.py \
    "$@"
