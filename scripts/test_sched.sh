#!/bin/sh
# sched CI tier: certify the plan -> scheduler -> results-plane stack.
#   * tests/test_exec_plan.py — execution-plan construction (canonical
#     specs, shared-trace lockstep groups, store dedupe + intra-plan
#     aliasing, SO-BMA presolve round-trip), on_error collect/raise
#     semantics, REPRO_WORKERS resolution, provenance stamping, and
#     serial-backend equivalence with the legacy sequential paths;
#   * tests/test_exec_queue.py — the pull-based work queue: atomic lease
#     claims (duplicate-claim protection), lease expiry requeuing a dead
#     worker's task, max_attempts exhaustion surfacing the original
#     WorkerExecutionError with the failing spec intact, and the
#     end-to-end "queue" backend with real worker subprocesses (one
#     killed mid-task) producing bit-identical results to "serial";
#   * tests/test_store_transfer.py — runs export/import tarballs with
#     the identical-or-error conflict policy and index rebuild.
# sched-marked subprocess tests auto-skip when os.cpu_count() < 2; set
# REPRO_FORCE_SCHED=1 to force them on a single-core host.
# Extra pytest arguments are passed through.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest -q \
    tests/test_exec_plan.py \
    tests/test_exec_queue.py \
    tests/test_store_transfer.py \
    "$@"
