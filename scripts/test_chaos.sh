#!/bin/sh
# chaos CI tier: certify the hardened failure semantics under injected faults.
#   * tests/test_faults.py — the deterministic injector (REPRO_FAULTS
#     parsing, seeded decision stream, zero-overhead off path), the
#     retry/backoff IO layer, store quarantine/degraded-mode behaviour,
#     and the chaos differentials: a matrix run under injected transient
#     faults (osfail/delay on store and queue sites) must be bit-identical
#     to the fault-free run on the serial, pool, and queue backends, and a
#     worker killed at a random injected site must leave state that
#     `repro doctor` reports clean after requeue;
#   * tests/test_doctor.py — the audit/repair surface itself (stale tmp
#     files, corrupt entries, stale index, orphaned leases, expired
#     claims, truncated import tarballs) and the doctor CLI exit codes.
# Chaos tests that spawn worker subprocesses also carry the sched marker
# and auto-skip when os.cpu_count() < 2; set REPRO_FORCE_SCHED=1 to force
# them on a single-core host.  Extra pytest arguments are passed through.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest -q -m chaos \
    tests/test_faults.py \
    tests/test_doctor.py \
    "$@"
