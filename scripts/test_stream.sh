#!/bin/sh
# stream CI tier: certify the streaming trace protocol end to end.
#   * tests/test_traffic_stream.py — TraceStream protocol, chunked
#     generators (fork_generator counter/buffer semantics, every streamable
#     workload bit-identical to its bulk generator at any chunk size), tee
#     fan-out, the incremental statistics accumulator, and chunked CSV/JSONL
#     readers;
#   * tests/test_streaming_engine.py — the streaming drive loop: a
#     differential matrix over every registered algorithm x backend x chunk
#     size asserting streamed replay is bit-identical to materialized
#     replay, the golden pins under streaming, unknown-length checkpoint
#     planning, the bounded-memory guarantee, and the runner/spec
#     integration (traffic.streaming, compare_on_shared_trace fan-out).
# The same tests run in the default suite; this script is the focused
# entry point for CI and for iterating on stream-layer changes.
# Extra pytest arguments are passed through.
set -eu
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest -q \
    tests/test_traffic_stream.py \
    tests/test_streaming_engine.py \
    "$@"
