#!/bin/sh
# nostore CI tier: run the execution-layer and store suites with the run
# store explicitly disabled (REPRO_RUN_STORE=0, a falsey token honoured by
# repro.store.run_store.default_store), certifying that every entry point
# stays green and fully cold when no store is configured:
#   * execute_experiment_spec / ExperimentRunner / run_experiments /
#     run_specs_parallel must take their store=None default through
#     resolve_store -> default_store -> None without behaviour changes;
#   * the store test module itself must pass — its tests always name their
#     stores explicitly (tmp_path), so a disabled default is invisible;
#   * the CLI must honour the disabled default (`--store DIR` still opts in,
#     `repro runs` without --store reports "no run store configured").
# Extra pytest arguments are passed through.
set -eu
cd "$(dirname "$0")/.."
REPRO_RUN_STORE=0 PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    exec python -m pytest -q \
    tests/test_run_store.py \
    tests/test_simulation_runner.py \
    tests/test_simulation_parallel.py \
    tests/test_integration_end_to_end.py \
    tests/test_cli.py \
    "$@"
